#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "control/governor.hpp"
#include "harness/experiment.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::runner {

class ThreadPool;

/// Execution environment handed to kCustom runs. Strictly NON-semantic: a
/// run must produce bit-identical results for every possible context —
/// nothing here may feed the cache key or the simulation, only how fast the
/// result arrives. The pool enables intra-run parallelism (cluster fleets
/// fan per-machine advancement onto it), arbitrated against the engine's
/// own run-level parallelism via the lanes hint.
struct RunContext {
  /// The engine's work-stealing pool; null when the engine is serial or
  /// when execute() is called standalone. Borrowed, never owned; nested
  /// submission uses ThreadPool::run_and_wait, which cannot deadlock on a
  /// saturated pool.
  ThreadPool* pool = nullptr;
  /// How many pool lanes one run may reasonably claim for nested work:
  /// 0 = auto (share the pool; work stealing balances a partly idle grid),
  /// 1 = stay serial inside the run (the grid itself saturates the pool),
  /// N = the run owns the whole pool (a 1-run sweep).
  std::size_t lanes_hint = 0;
};

/// Declarative, hashable counterpart of harness::ActuationSetup. The sweep
/// engine needs actuations as *data* (they feed the cache key), so the
/// closure is built on demand via `to_setup()` from the same constructors the
/// serial benches used — labels and behaviour are identical.
struct ActuationSpec {
  enum class Kind : std::uint8_t {
    kNone,              // race-to-idle baseline
    kGlobal,            // Dimetrodon global Bernoulli policy
    kGlobalStratified,  // deterministic (stratified) injection
    kVfs,               // static DVFS ladder setpoint
    kTcc,               // static p4tcc clock-duty setpoint
    kGovernor,          // closed-loop governed injection (src/control)
  };

  Kind kind = Kind::kNone;
  double probability = 0.0;   // kGlobal / kGlobalStratified; for kGovernor,
                              // the preventive-channel floor duty (0 = none)
  sim::SimTime quantum = 0;   // kGlobal / kGlobalStratified / kGovernor floor
  std::size_t level = 0;      // kVfs ladder index / kTcc duty step
  control::GovernorSpec governor{};  // kGovernor only

  static ActuationSpec none() { return {}; }
  static ActuationSpec global(double p, sim::SimTime quantum) {
    return {Kind::kGlobal, p, quantum, 0};
  }
  static ActuationSpec global_stratified(double p, sim::SimTime quantum) {
    return {Kind::kGlobalStratified, p, quantum, 0};
  }
  static ActuationSpec vfs(std::size_t level) {
    return {Kind::kVfs, 0.0, 0, level};
  }
  static ActuationSpec tcc(std::size_t duty_step) {
    return {Kind::kTcc, 0.0, 0, duty_step};
  }
  /// Governed injection; `preventive_p > 0` also engages the arbiter's
  /// open-loop preventive channel as a duty floor (hybrid deployments).
  static ActuationSpec governed(control::GovernorSpec spec,
                                double preventive_p = 0.0,
                                sim::SimTime preventive_quantum =
                                    sim::from_ms(100)) {
    ActuationSpec a;
    a.kind = Kind::kGovernor;
    a.probability = preventive_p;
    a.quantum = preventive_quantum;
    a.governor = spec;
    return a;
  }

  harness::ActuationSetup to_setup() const;
  std::string label() const { return to_setup().label; }
};

/// Structured capture of one failed run: what threw, which grid point, and
/// how hard the engine tried. Failure is data, not death — a sweep with a
/// degenerate config finishes every other point and reports these in its
/// metrics JSON instead of aborting.
struct RunError {
  std::size_t spec_index = 0;   // position in the sweep's spec vector
  std::string spec_label;       // workload_key / custom_tag (+ actuation)
  std::string key_hex;          // cache key of the canonical spec
  std::uint64_t seed = 0;
  std::string what;             // exception message; "(non-std exception)"
                                // when something other than std::exception
                                // escaped
  bool transient = false;       // was the final failure a retryable class?
  std::uint32_t attempts = 1;   // total attempts, including the failing one
  double wall_seconds = 0.0;    // wall time burned across all attempts
};

/// Everything the engine caches about one run: the union of what the sweep
/// benches read out. Measured runs fill `result`; custom runs fill whichever
/// of `window`, `samples`, and `extra` they produce.
struct RunRecord {
  harness::RunResult result;
  harness::WindowResult window;
  std::vector<double> samples;  // e.g. per-thread completion times
  std::vector<std::pair<std::string, double>> extra;  // named custom metrics

  /// Engaged when the run failed: `result`/`window` hold defaults, nothing
  /// was cached, and the error carries the capture. Failed records never
  /// enter the result cache, so the serialization format is unaffected.
  std::optional<RunError> error;
  bool ok() const { return !error.has_value(); }

  /// Lookup in `extra`; dies if absent (a cache-format mismatch bug).
  double metric(const std::string& key) const;

  /// Simulated seconds consumed producing this record (progress metrics).
  /// Measured runs report it via result.sim_seconds; window runs via
  /// window.wall_seconds; custom runs may add an "sim_seconds" extra.
  double sim_seconds_estimate() const;
};

/// One point of a sweep grid. A spec is pure data plus the factories needed
/// to execute it; the data half (everything except the std::functions) is
/// canonicalized into the cache key, so two specs collide exactly when they
/// describe the same simulation.
struct RunSpec {
  enum class Kind : std::uint8_t {
    kMeasure,  // steady-state settle + 30 s-window measurement
    kCustom,   // arbitrary bench-supplied computation
  };

  Kind kind = Kind::kMeasure;

  /// Stable identity of what `workload` builds (e.g. "cpuburn:4",
  /// "spec:calculix:4"). Part of the cache key; the factory itself cannot be
  /// hashed, so the caller vouches that equal keys build equal workloads.
  std::string workload_key;
  harness::ExperimentRunner::WorkloadFactory workload;

  ActuationSpec actuation;
  harness::MeasurementConfig measurement{};

  /// kMeasure only: simulated time to run the deployed workload *unactuated*
  /// before the actuation attaches and the settle/measure methodology begins.
  /// Points sharing the same (machine config, workload_key, seed, warmup)
  /// prefix fork from one cached machine snapshot instead of re-simulating
  /// it (see SweepEngine). 0 = classic cold run. Part of the cache key, so
  /// warm and cold records never collide.
  sim::SimTime warmup = 0;

  /// Master seed of this run's machine. Every RNG stream in the simulation
  /// derives from it, which is what makes runs independent of execution
  /// order and thread placement.
  std::uint64_t seed = 0;

  /// Overrides the engine's base machine config for this run (C-state or
  /// scheduler ablations). Hashed canonically either way.
  std::optional<sched::MachineConfig> machine;

  /// kCustom only: the computation, plus a tag naming it in the cache key.
  /// The tag must change whenever the function's meaning changes — the
  /// engine cannot see through the closure. The RunContext is the engine's
  /// execution environment (shared pool, parallelism hint); it is not part
  /// of the identity and must not change results.
  std::function<RunRecord(const RunSpec&, const sched::MachineConfig&,
                          const RunContext&)>
      custom;
  std::string custom_tag;
};

/// Deterministic canonical serialization of a spec's data half (machine
/// config, measurement config, workload key, actuation, seed, custom tag).
/// Doubles are rendered as hex floats, so the text is bit-exact. This string
/// *is* the cache identity: it is hashed for the key and stored verbatim in
/// the cache file to rule out hash collisions.
std::string canonical_spec(const RunSpec& spec,
                           const sched::MachineConfig& base);

/// Canonical identity of a spec's warmup prefix: machine config + workload
/// key + seed + warmup, and nothing else. Two specs share a warmup snapshot
/// exactly when this string matches — actuation and measurement config are
/// deliberately absent because the prefix runs before either applies.
std::string canonical_warm_prefix(const RunSpec& spec,
                                  const sched::MachineConfig& base);

}  // namespace dimetrodon::runner
