#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "runner/run_spec.hpp"

namespace dimetrodon::runner {

/// Point-in-time view of a sweep's progress.
struct MetricsSnapshot {
  std::size_t total_runs = 0;
  std::size_t completed = 0;   // cache hits + executed + failed
  std::size_t in_flight = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;    // simulations actually run (successfully)
  std::size_t failed = 0;      // runs that exhausted every attempt
  double cache_hit_rate = 0.0;           // hits / completed
  double sim_seconds_done = 0.0;         // simulated time of executed runs
  double wall_seconds = 0.0;
  double sim_seconds_per_second = 0.0;   // aggregate simulation throughput
  double runs_per_second = 0.0;
  double eta_seconds = 0.0;              // 0 when unknown or done
  /// Sum of the per-run counter windows across every completed run
  /// (cache hits included: counters are part of the cached record), plus
  /// the sweep-level fault counters (runs_failed, runs_retried,
  /// cache_write_retries) maintained by the engine itself.
  obs::CounterTotals counters;
  /// Structured capture of every failed run, in completion order.
  std::vector<RunError> errors;
};

/// Thread-safe progress/throughput accounting for one sweep. Cheap enough to
/// update per run (runs are whole simulations); rendered as a one-line
/// progress string during the sweep and dumped as JSON at the end.
class SweepMetrics {
 public:
  explicit SweepMetrics(std::size_t total_runs);

  void on_run_started();
  void on_cache_hit();
  void on_run_executed(double sim_seconds);
  /// A run gave up after `error.attempts` attempts; settles its in-flight
  /// slot and records the capture.
  void on_run_failed(RunError error);
  /// One extra attempt after a transient failure.
  void on_run_retried();
  /// `n` failed attempts inside one ResultCache::store call.
  void on_cache_write_retries(std::uint32_t n);
  /// Fold one run's counter window into the sweep-wide totals.
  void add_counters(const obs::CounterTotals& t);

  MetricsSnapshot snapshot() const;

  /// "sweep 12/32 done (4 in flight) | cache 3 hits | 412.1 sim-s/s | ETA 8s"
  static std::string progress_line(const MetricsSnapshot& s);
  static std::string to_json(const MetricsSnapshot& s);

  /// Write `to_json(snapshot())` to `path` (best-effort; errors ignored).
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::size_t total_;
  std::size_t in_flight_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t executed_ = 0;
  double sim_seconds_done_ = 0.0;
  obs::CounterTotals counters_;
  std::vector<RunError> errors_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dimetrodon::runner
