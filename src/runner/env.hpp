#pragma once

#include <optional>

namespace dimetrodon::runner {

/// Strict non-negative integer parse of an environment variable; returns
/// nullopt (after a one-time stderr warning) on anything else, so a typo'd
/// variable degrades to the caller's default instead of silently becoming 0
/// threads. Shared by the sweep engine (DIMETRODON_SWEEP_*) and the cluster
/// layer (DIMETRODON_FLEET_THREADS).
std::optional<std::size_t> env_size_t(const char* var);

/// Boolean env parse: accepts 0/1 (and a few spellings); warns otherwise.
std::optional<bool> env_bool(const char* var);

/// One-time-per-variable stderr nag about an unparseable value.
void warn_env_once(const char* var, const char* value, const char* expected);

}  // namespace dimetrodon::runner
