#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dimetrodon::runner {

/// Work-stealing pool for coarse-grained simulation tasks. Each worker owns
/// a deque: it pops its own work from the front (submission order) and, when
/// empty, steals from the back of a sibling's deque. Tasks must not throw —
/// an escaping exception terminates (simulation tasks capture failures in
/// their results instead).
///
/// `num_threads == 0` degenerates to inline execution: submit() runs the
/// task on the calling thread. This is the reference serial mode parallel
/// sweeps are checked against.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue one task (round-robin across worker deques).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Tasks completed by stealing rather than from the owner's own deque
  /// (load-balance diagnostics).
  std::size_t steal_count() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;   // workers wait here for new tasks
  std::condition_variable idle_cv_;   // wait_idle() waits here
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t next_queue_ = 0;
  std::size_t steals_ = 0;
  bool shutdown_ = false;
};

}  // namespace dimetrodon::runner
