#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dimetrodon::runner {

/// Work-stealing pool for coarse-grained simulation tasks. Each worker owns
/// a deque: it pops its own work from the front (submission order) and, when
/// empty, steals from the back of a sibling's deque.
///
/// The pool is exception-contained: a task that throws never terminates the
/// process and never deranges the idle accounting — the pending counter is
/// settled by RAII on every exit path, the escaping exception is swallowed,
/// and task_exception_count() reports how many tasks died that way. Callers
/// that care *what* threw (the sweep engine does) must catch inside the task
/// and encode the failure in their own results.
///
/// `num_threads == 0` degenerates to inline execution: submit() runs the
/// task on the calling thread. This is the reference serial mode parallel
/// sweeps are checked against.
///
/// Nested parallelism: a task running on a pool worker may fan its own
/// subtasks onto the SAME pool with run_and_wait() — the caller executes
/// queued work (its own subtasks first, then anything stealable) instead of
/// blocking, so a saturated pool cannot deadlock on re-entry. This is what
/// lets a cluster fleet parallelize inside a sweep run without a second
/// pool: an idle grid leaves every lane to the fleet, a saturated grid makes
/// each run execute its own subtasks inline.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue one task (round-robin across worker deques).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Must NOT be called from
  /// a task running on this pool (the worker would wait for itself); that
  /// misuse throws std::logic_error instead of deadlocking — nested joins
  /// use run_and_wait().
  void wait_idle();

  /// Run `tasks` on the pool and return when ALL of them have finished.
  /// Safe to call from a pool worker (the nested-parallelism join): while
  /// the group is outstanding the caller helps — it pops its own queue,
  /// then steals, executing any queued task (its group's or another's) —
  /// and only sleeps once every queued task is claimed. Because every group
  /// task is enqueued before the help loop starts, a failed claim scan
  /// means all group tasks are running on other lanes, and those lanes help
  /// in turn if they re-enter: no saturation deadlock at any nesting depth.
  /// With 0 workers the tasks run inline, in order, on the caller.
  /// Exceptions follow the pool contract (swallowed + counted); callers
  /// that need failures must capture them inside the task.
  void run_and_wait(std::vector<std::function<void()>> tasks);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Tasks completed by stealing rather than from the owner's own deque
  /// (load-balance diagnostics).
  std::size_t steal_count() const;

  /// Tasks whose exception escaped into the pool and was swallowed.
  std::size_t task_exception_count() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Join state for one run_and_wait group: shared by the wrapped tasks
  /// (which decrement on every exit path) and the waiting caller.
  struct JoinGroup {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);
  /// Claim any queued task from the caller's perspective: own queue first
  /// when on a worker, else steal from every queue. Sets `stolen` for the
  /// steal-count accounting.
  bool try_claim(std::function<void()>& task, bool& stolen);
  void run_task(std::function<void()>& task, bool stolen);
  void finish_task(bool stolen);

  /// Settles the pending count even when the task (or anything after it)
  /// throws: every task popped from a queue is finished exactly once.
  struct TaskGuard {
    ThreadPool& pool;
    bool stolen;
    ~TaskGuard() { pool.finish_task(stolen); }
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;   // workers wait here for new tasks
  std::condition_variable idle_cv_;   // wait_idle() waits here
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t next_queue_ = 0;
  std::size_t steals_ = 0;
  bool shutdown_ = false;

  /// Tasks enqueued but not yet popped. Incremented under state_mu_ (so the
  /// work_cv_ predicate can read it without a lost-wakeup race) and
  /// decremented atomically by the popping worker, turning the wait
  /// predicate into an O(1) counter check instead of a scan that locked
  /// every queue mutex while holding state_mu_.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> task_exceptions_{0};
};

}  // namespace dimetrodon::runner
