#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dimetrodon::runner {

/// Work-stealing pool for coarse-grained simulation tasks. Each worker owns
/// a deque: it pops its own work from the front (submission order) and, when
/// empty, steals from the back of a sibling's deque.
///
/// The pool is exception-contained: a task that throws never terminates the
/// process and never deranges the idle accounting — the pending counter is
/// settled by RAII on every exit path, the escaping exception is swallowed,
/// and task_exception_count() reports how many tasks died that way. Callers
/// that care *what* threw (the sweep engine does) must catch inside the task
/// and encode the failure in their own results.
///
/// `num_threads == 0` degenerates to inline execution: submit() runs the
/// task on the calling thread. This is the reference serial mode parallel
/// sweeps are checked against.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue one task (round-robin across worker deques).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Tasks completed by stealing rather than from the owner's own deque
  /// (load-balance diagnostics).
  std::size_t steal_count() const;

  /// Tasks whose exception escaped into the pool and was swallowed.
  std::size_t task_exception_count() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);
  void run_task(std::function<void()>& task, bool stolen);
  void finish_task(bool stolen);

  /// Settles the pending count even when the task (or anything after it)
  /// throws: every task popped from a queue is finished exactly once.
  struct TaskGuard {
    ThreadPool& pool;
    bool stolen;
    ~TaskGuard() { pool.finish_task(stolen); }
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;   // workers wait here for new tasks
  std::condition_variable idle_cv_;   // wait_idle() waits here
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t next_queue_ = 0;
  std::size_t steals_ = 0;
  bool shutdown_ = false;

  /// Tasks enqueued but not yet popped. Incremented under state_mu_ (so the
  /// work_cv_ predicate can read it without a lost-wakeup race) and
  /// decremented atomically by the popping worker, turning the wait
  /// predicate into an O(1) counter check instead of a scan that locked
  /// every queue mutex while holding state_mu_.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> task_exceptions_{0};
};

}  // namespace dimetrodon::runner
