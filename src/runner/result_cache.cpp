#include "runner/result_cache.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "runner/fault_injection.hpp"
#include "sim/canon.hpp"

namespace dimetrodon::runner {

namespace {

// v3: sweep-level fault counters joined obs::CounterTotals::fields().
// v4: thermal-engine counters joined obs::CounterTotals::fields(), and the
// lazy thermal clock changed simulated trajectories (leakage is now refreshed
// per interaction span, not per 250 µs substep).
// v5: QosStats gained streaming percentiles (qos.p50/p95/p99_latency_s) and
// the cluster-scope counters (requests_routed, node_drains) joined
// obs::CounterTotals::fields().
// v6: closed-loop governor counters (governor_samples/trips/releases,
// duty_changes, duty_reversals) joined obs::CounterTotals::fields().
// v7 (sim::kCanonVersion): canonical serialization consolidated into
// sim::CanonWriter, cluster tags gained rack/CRAC + traffic-shape fields,
// and the fleet_samples counter joined obs::CounterTotals::fields(). The
// magic now tracks the canon version directly: one bump invalidates both the
// payload format and every canonical spec string at once.
// Bumping the magic makes every older file a clean miss, so old caches are
// recomputed rather than misparsed.
const std::string kFileMagic =
    "dimetrodon-sweep-cache v" + std::to_string(sim::kCanonVersion);

std::uint64_t fnv1a(const std::string& s, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_line(std::string& out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %a\n", key, v);
  out += buf;
}

void put_line(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Line-oriented strict reader: every get_* consumes one line and fails the
/// whole parse on any mismatch.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  bool get_prefixed(const char* key, std::string& rest) {
    std::string line;
    if (!std::getline(in_, line)) return false;
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0) return false;
    rest = line.substr(prefix.size());
    return true;
  }

  bool get_double(const char* key, double& v) {
    std::string rest;
    if (!get_prefixed(key, rest)) return false;
    return parse_double(rest, v);
  }

  bool get_u64(const char* key, std::uint64_t& v) {
    std::string rest;
    if (!get_prefixed(key, rest)) return false;
    return parse_u64(rest, v);
  }

  bool get_exact(const char* line_text) {
    std::string line;
    if (!std::getline(in_, line)) return false;
    return line == line_text;
  }

  bool at_end() {
    std::string line;
    return !std::getline(in_, line);
  }

  static bool parse_double(const std::string& s, double& v) {
    errno = 0;
    char* end = nullptr;
    v = std::strtod(s.c_str(), &end);
    return errno == 0 && end != s.c_str() && *end == '\0';
  }

  /// Strictly a bare decimal digit string. strtoull alone would accept
  /// leading whitespace, a '+'/'-' sign (silently wrapping "-1" to 2^64-1),
  /// and "0x" prefixes — all of which let a corrupted record parse
  /// "successfully".
  static bool parse_u64(const std::string& s, std::uint64_t& v) {
    if (s.empty() || s.size() > 20) return false;  // 2^64-1 has 20 digits
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
    }
    errno = 0;
    char* end = nullptr;
    v = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
  }

 private:
  std::istringstream in_;
};

}  // namespace

CacheKey CacheKey::of(const std::string& canonical) {
  // Two FNV-1a streams with different bases; 128 bits total. Collisions are
  // additionally ruled out by the verbatim spec comparison on load.
  return CacheKey{fnv1a(canonical, 0xcbf29ce484222325ULL),
                  fnv1a(canonical, 0x84222325cbf29ce4ULL)};
}

std::string CacheKey::hex() const {
  char buf[36];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

ResultCache::ResultCache(std::string dir, bool enabled,
                         std::uint32_t write_retry_limit,
                         std::uint32_t retry_backoff_ms)
    : dir_(std::move(dir)),
      enabled_(enabled && !dir_.empty()),
      write_retry_limit_(write_retry_limit),
      retry_backoff_ms_(retry_backoff_ms) {
  if (enabled_) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) enabled_ = false;
  }
}

std::string ResultCache::path_for(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".run";
}

std::string ResultCache::serialize_record(const RunRecord& record) {
  std::string out;
  out.reserve(1024);
  const auto& r = record.result;
  out += "result.label " + r.label + "\n";
  put_line(out, "result.idle_sensor_temp_c", r.idle_sensor_temp_c);
  put_line(out, "result.idle_exact_temp_c", r.idle_exact_temp_c);
  put_line(out, "result.avg_sensor_temp_c", r.avg_sensor_temp_c);
  put_line(out, "result.avg_exact_temp_c", r.avg_exact_temp_c);
  put_line(out, "result.throughput", r.throughput);
  put_line(out, "result.avg_power_w", r.avg_power_w);
  put_line(out, "result.injected_idle_fraction", r.injected_idle_fraction);
  put_line(out, "result.sim_seconds", r.sim_seconds);
  put_line(out, "result.has_qos",
           static_cast<std::uint64_t>(r.qos.has_value()));
  const workload::WebWorkload::QosStats qos =
      r.qos.value_or(workload::WebWorkload::QosStats{});
  put_line(out, "qos.good", qos.good);
  put_line(out, "qos.tolerable", qos.tolerable);
  put_line(out, "qos.fail", qos.fail);
  put_line(out, "qos.total", qos.total);
  put_line(out, "qos.mean_latency_s", qos.mean_latency_s);
  put_line(out, "qos.max_latency_s", qos.max_latency_s);
  put_line(out, "qos.p50_latency_s", qos.p50_latency_s);
  put_line(out, "qos.p95_latency_s", qos.p95_latency_s);
  put_line(out, "qos.p99_latency_s", qos.p99_latency_s);
  for (const auto& [name, member] : obs::CounterTotals::fields()) {
    put_line(out, (std::string("counter.") + name).c_str(),
             r.counters.*member);
  }
  const auto& w = record.window;
  put_line(out, "window.completion_seconds", w.completion_seconds);
  put_line(out, "window.meter_energy_j", w.meter_energy_j);
  put_line(out, "window.true_energy_j", w.true_energy_j);
  put_line(out, "window.mean_power_w", w.mean_power_w);
  put_line(out, "window.wall_seconds", w.wall_seconds);
  put_line(out, "samples", static_cast<std::uint64_t>(record.samples.size()));
  for (const double s : record.samples) put_line(out, "s", s);
  put_line(out, "extras", static_cast<std::uint64_t>(record.extra.size()));
  for (const auto& [k, v] : record.extra) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "e %a ", v);
    out += buf;
    out += k;
    out += '\n';
  }
  // Terminator: truncation anywhere in the payload is a parse failure even
  // without the file-level checksum.
  out += "eot\n";
  return out;
}

std::optional<RunRecord> ResultCache::parse_record(const std::string& payload) {
  // getline treats "eot" and "eot\n" identically, so a payload whose final
  // newline was truncated away would otherwise still parse.
  if (payload.empty() || payload.back() != '\n') return std::nullopt;
  LineReader in(payload);
  RunRecord rec;
  auto& r = rec.result;
  std::uint64_t u = 0;
  if (!in.get_prefixed("result.label", r.label)) return std::nullopt;
  if (!in.get_double("result.idle_sensor_temp_c", r.idle_sensor_temp_c) ||
      !in.get_double("result.idle_exact_temp_c", r.idle_exact_temp_c) ||
      !in.get_double("result.avg_sensor_temp_c", r.avg_sensor_temp_c) ||
      !in.get_double("result.avg_exact_temp_c", r.avg_exact_temp_c) ||
      !in.get_double("result.throughput", r.throughput) ||
      !in.get_double("result.avg_power_w", r.avg_power_w) ||
      !in.get_double("result.injected_idle_fraction",
                     r.injected_idle_fraction) ||
      !in.get_double("result.sim_seconds", r.sim_seconds)) {
    return std::nullopt;
  }
  if (!in.get_u64("result.has_qos", u) || u > 1) return std::nullopt;
  const bool has_qos = u == 1;
  workload::WebWorkload::QosStats qos;
  if (!in.get_u64("qos.good", qos.good) ||
      !in.get_u64("qos.tolerable", qos.tolerable) ||
      !in.get_u64("qos.fail", qos.fail) ||
      !in.get_u64("qos.total", qos.total) ||
      !in.get_double("qos.mean_latency_s", qos.mean_latency_s) ||
      !in.get_double("qos.max_latency_s", qos.max_latency_s) ||
      !in.get_double("qos.p50_latency_s", qos.p50_latency_s) ||
      !in.get_double("qos.p95_latency_s", qos.p95_latency_s) ||
      !in.get_double("qos.p99_latency_s", qos.p99_latency_s)) {
    return std::nullopt;
  }
  if (has_qos) r.qos = qos;
  for (const auto& [name, member] : obs::CounterTotals::fields()) {
    if (!in.get_u64((std::string("counter.") + name).c_str(),
                    r.counters.*member)) {
      return std::nullopt;
    }
  }
  auto& w = rec.window;
  if (!in.get_double("window.completion_seconds", w.completion_seconds) ||
      !in.get_double("window.meter_energy_j", w.meter_energy_j) ||
      !in.get_double("window.true_energy_j", w.true_energy_j) ||
      !in.get_double("window.mean_power_w", w.mean_power_w) ||
      !in.get_double("window.wall_seconds", w.wall_seconds)) {
    return std::nullopt;
  }
  if (!in.get_u64("samples", u)) return std::nullopt;
  rec.samples.resize(u);
  for (auto& s : rec.samples) {
    if (!in.get_double("s", s)) return std::nullopt;
  }
  if (!in.get_u64("extras", u)) return std::nullopt;
  rec.extra.reserve(u);
  for (std::uint64_t i = 0; i < u; ++i) {
    std::string rest;
    if (!in.get_prefixed("e", rest)) return std::nullopt;
    const auto space = rest.find(' ');
    if (space == std::string::npos) return std::nullopt;
    double v = 0.0;
    if (!LineReader::parse_double(rest.substr(0, space), v)) {
      return std::nullopt;
    }
    rec.extra.emplace_back(rest.substr(space + 1), v);
  }
  if (!in.get_exact("eot") || !in.at_end()) return std::nullopt;
  return rec;
}

std::optional<RunRecord> ResultCache::load(const CacheKey& key,
                                           const std::string& canonical) const {
  if (!enabled_) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Structure: magic \n spec <canonical> \n <payload> check <hex> \n end \n
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line) || line != kFileMagic) return std::nullopt;
  if (!std::getline(lines, line) || line != "spec " + canonical) {
    return std::nullopt;  // hash collision or stale format — recompute
  }
  const auto payload_begin = static_cast<std::string::size_type>(lines.tellg());
  const auto check_pos = text.rfind("\ncheck ");
  if (check_pos == std::string::npos || check_pos < payload_begin) {
    return std::nullopt;  // truncated before the checksum
  }
  const std::string payload =
      text.substr(payload_begin, check_pos + 1 - payload_begin);
  std::istringstream tail(text.substr(check_pos + 1));
  if (!std::getline(tail, line)) return std::nullopt;
  char expect[32];
  std::snprintf(expect, sizeof expect, "check %016llx",
                static_cast<unsigned long long>(
                    fnv1a(payload, 0xcbf29ce484222325ULL)));
  if (line != expect) return std::nullopt;  // corrupted payload
  if (!std::getline(tail, line) || line != "end") return std::nullopt;
  return parse_record(payload);
}

namespace {

/// Write `text` to `path` and fsync it. Returns false on any short write or
/// IO error (including injected ones), leaving whatever partial temp file
/// exists for the caller to clean up.
bool write_file_synced(const std::string& path, const std::string& text,
                       std::uint64_t fault_key) {
  if (fault::io_fault("cache.write", fault_key) == fault::Action::kIoError) {
    return false;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = text.data();
  std::size_t left = text.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}

/// fsync the directory so the rename itself is durable. Best-effort: some
/// filesystems refuse O_RDONLY directory fsync; the rename is still atomic.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

StoreOutcome ResultCache::store(const CacheKey& key,
                                const std::string& canonical,
                                const RunRecord& record) const {
  StoreOutcome outcome;
  if (!enabled_) return outcome;
  const std::string payload = serialize_record(record);
  std::string text = kFileMagic + "\n";
  text += "spec " + canonical + "\n";
  text += payload;
  char check[32];
  std::snprintf(check, sizeof check, "check %016llx",
                static_cast<unsigned long long>(
                    fnv1a(payload, 0xcbf29ce484222325ULL)));
  text += check;
  text += "\nend\n";

  const std::string final_path = path_for(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  // Cache writes are best-effort (a lost store costs a recompute, never a
  // wrong result), but transient filesystem errors are worth a bounded,
  // deterministic retry: attempt k sleeps k * backoff before rewriting.
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (write_file_synced(tmp_path, text, key.hi)) {
      // Crash-simulation point: a process killed here leaves only the pid-
      // suffixed temp file. The final path either has the old content or,
      // after the rename below, the complete new record — never a torn one.
      if (fault::io_fault("cache.rename", key.hi) == fault::Action::kCrash) {
        outcome.retries = attempt;
        return outcome;
      }
      std::error_code ec;
      std::filesystem::rename(tmp_path, final_path, ec);
      if (!ec) {
        sync_dir(dir_);
        outcome.stored = true;
        outcome.retries = attempt;
        return outcome;
      }
    }
    if (attempt >= write_retry_limit_) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retry_backoff_ms_ * (attempt + 1)));
  }
  std::remove(tmp_path.c_str());
  outcome.retries = write_retry_limit_;
  return outcome;
}

}  // namespace dimetrodon::runner
