#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace dimetrodon::runner::fault {

/// Error raised for failures worth retrying (filesystem hiccups and their
/// injected stand-ins). The sweep engine's retry policy retries exactly
/// these plus std::system_error / std::ios_base::failure; everything else
/// is treated as deterministic and fails the run on the first attempt.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a triggered failpoint does at its site.
enum class Action : std::uint8_t {
  kThrowLogic,      // throw std::runtime_error (deterministic failure)
  kThrowTransient,  // throw TransientError (retryable failure)
  kThrowUnknown,    // throw a non-std::exception (exercises catch(...))
  kIoError,         // IO sites: report the operation as failed
  kCrash,           // IO sites: abandon mid-protocol, as if killed by SIGKILL
};

/// When a failpoint fires. Arrival counters are per site and only advance
/// while the site has a rule armed, so trigger windows are deterministic.
struct FaultRule {
  Action action = Action::kThrowTransient;
  /// Skip the first `after` matching arrivals, then fire `count` times.
  std::uint64_t after = 0;
  std::uint64_t count = UINT64_MAX;
  /// If set, only arrivals whose key equals `key` match (callers pass the
  /// RunSpec cache-key hash, so a single grid point can be targeted).
  std::optional<std::uint64_t> key;
};

/// Process-wide failpoint registry. Sites are string literals compiled into
/// the error paths they test ("run.execute", "cache.write", "cache.rename").
/// Rules come from test code via arm()/disarm_all() or from the environment
/// variable DIMETRODON_FAULT, parsed once at first use:
///
///   DIMETRODON_FAULT="run.execute=transient,after=2,count=1;cache.write=io"
///
/// Semicolon-separated rules, each `site=action` with optional
/// `,after=N` / `,count=N` / `,key=HEX` clauses. Actions: logic, transient,
/// unknown, io, crash. Malformed rules warn on stderr and are dropped.
///
/// With no rules armed, hit() is a single relaxed atomic load — the hooks
/// are free in production sweeps.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(const std::string& site, FaultRule rule);
  void disarm_all();

  /// Record one arrival at `site`; returns the action to perform if an
  /// armed rule matched. Thread-safe; counters advance deterministically
  /// in arrival order.
  std::optional<Action> hit(const char* site, std::uint64_t key = 0);

  /// Matching arrivals seen at `site` since it was armed (diagnostics).
  std::uint64_t hits(const std::string& site) const;

  /// Parse a DIMETRODON_FAULT-style rule string (exposed for tests; the
  /// environment variable goes through this). Returns rules parsed.
  std::size_t arm_from_spec(const std::string& spec);

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

/// Throw-site hook: if an armed rule matches, raises the configured
/// exception. kIoError/kCrash rules at a throw site degrade to kThrowLogic.
void maybe_throw(const char* site, std::uint64_t key = 0);

/// IO-site hook: returns the matched action so the caller can fail the
/// operation (kIoError) or abandon it mid-protocol (kCrash).
std::optional<Action> io_fault(const char* site, std::uint64_t key = 0);

}  // namespace dimetrodon::runner::fault
