#include "runner/fault_injection.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace dimetrodon::runner::fault {

namespace {

std::optional<Action> parse_action(const std::string& s) {
  if (s == "logic") return Action::kThrowLogic;
  if (s == "transient") return Action::kThrowTransient;
  if (s == "unknown") return Action::kThrowUnknown;
  if (s == "io") return Action::kIoError;
  if (s == "crash") return Action::kCrash;
  return std::nullopt;
}

bool parse_u64(const std::string& s, int base, std::uint64_t& v) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  v = std::strtoull(s.c_str(), &end, base);
  return errno == 0 && end == s.c_str() + s.size();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

struct FaultInjector::Impl {
  struct Site {
    FaultRule rule;
    std::uint64_t arrivals = 0;  // matching arrivals since arm()
  };

  mutable std::mutex mu;
  std::map<std::string, Site> sites;
  std::atomic<bool> armed{false};
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* env = std::getenv("DIMETRODON_FAULT")) {
    arm_from_spec(env);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* inst = new FaultInjector;  // leaked: safe at exit
  return *inst;
}

void FaultInjector::arm(const std::string& site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sites[site] = Impl::Site{rule, 0};
  impl_->armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sites.clear();
  impl_->armed.store(false, std::memory_order_release);
}

std::optional<Action> FaultInjector::hit(const char* site, std::uint64_t key) {
  if (!impl_->armed.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  if (it == impl_->sites.end()) return std::nullopt;
  Impl::Site& s = it->second;
  if (s.rule.key && *s.rule.key != key) return std::nullopt;
  const std::uint64_t arrival = s.arrivals++;
  if (arrival < s.rule.after) return std::nullopt;
  if (arrival - s.rule.after >= s.rule.count) return std::nullopt;
  return s.rule.action;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.arrivals;
}

std::size_t FaultInjector::arm_from_spec(const std::string& spec) {
  std::size_t armed = 0;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto clauses = split(entry, ',');
    const auto eq = clauses[0].find('=');
    std::optional<Action> action;
    if (eq != std::string::npos) {
      action = parse_action(clauses[0].substr(eq + 1));
    }
    if (!action) {
      std::fprintf(stderr, "[fault] ignoring malformed rule \"%s\"\n",
                   entry.c_str());
      continue;
    }
    const std::string site = clauses[0].substr(0, eq);
    FaultRule rule;
    rule.action = *action;
    bool ok = !site.empty();
    for (std::size_t i = 1; i < clauses.size() && ok; ++i) {
      const auto ceq = clauses[i].find('=');
      if (ceq == std::string::npos) {
        ok = false;
        break;
      }
      const std::string k = clauses[i].substr(0, ceq);
      const std::string v = clauses[i].substr(ceq + 1);
      std::uint64_t n = 0;
      if (k == "after" && parse_u64(v, 10, n)) {
        rule.after = n;
      } else if (k == "count" && parse_u64(v, 10, n)) {
        rule.count = n;
      } else if (k == "key" && parse_u64(v, 16, n)) {
        rule.key = n;
      } else {
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "[fault] ignoring malformed rule \"%s\"\n",
                   entry.c_str());
      continue;
    }
    arm(site, rule);
    ++armed;
  }
  return armed;
}

void maybe_throw(const char* site, std::uint64_t key) {
  const auto action = FaultInjector::instance().hit(site, key);
  if (!action) return;
  switch (*action) {
    case Action::kThrowTransient:
      throw TransientError(std::string("injected transient fault at ") + site);
    case Action::kThrowUnknown:
      throw 0xfa17;  // deliberately not a std::exception
    case Action::kThrowLogic:
    case Action::kIoError:
    case Action::kCrash:
      throw std::runtime_error(std::string("injected fault at ") + site);
  }
}

std::optional<Action> io_fault(const char* site, std::uint64_t key) {
  return FaultInjector::instance().hit(site, key);
}

}  // namespace dimetrodon::runner::fault
