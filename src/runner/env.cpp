#include "runner/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace dimetrodon::runner {

void warn_env_once(const char* var, const char* value, const char* expected) {
  // A bench may build several configs (or clusters); nag about a given
  // variable only once per process.
  static std::mutex mu;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mu);
  if (!warned.insert(var).second) return;
  std::fprintf(stderr,
               "[runner] ignoring %s=\"%s\" (expected %s); using default\n",
               var, value, expected);
}

std::optional<std::size_t> env_size_t(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || raw[0] == '-' ||
      v > 4096ULL) {
    warn_env_once(var, raw, "an integer in 0..4096");
    return std::nullopt;
  }
  return static_cast<std::size_t>(v);
}

std::optional<bool> env_bool(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return std::nullopt;
  const std::string v(raw);
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  warn_env_once(var, raw, "0 or 1");
  return std::nullopt;
}

}  // namespace dimetrodon::runner
