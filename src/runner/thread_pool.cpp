#include "runner/thread_pool.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace dimetrodon::runner {

namespace {
// Which pool (if any) owns the calling thread, and the worker's own queue
// index — set once at worker_loop entry. run_and_wait uses them to pop the
// caller's own queue before stealing, and wait_idle uses them to reject the
// self-join misuse.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_self = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode still honours the exception contract: a throwing task is
    // counted, not propagated.
    try {
      task();
    } catch (...) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
    // Incremented before the push: a worker woken by the queued_ check may
    // briefly re-scan before the task lands in its deque, which is harmless;
    // incrementing outside state_mu_ could lose the wakeup entirely.
    queued_.fetch_add(1, std::memory_order_relaxed);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  if (tl_pool == this) {
    throw std::logic_error(
        "ThreadPool::wait_idle called from a worker of the same pool — the "
        "task would wait for itself; use run_and_wait for nested joins");
  }
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::on_worker_thread() const { return tl_pool == this; }

bool ThreadPool::try_claim(std::function<void()>& task, bool& stolen) {
  if (tl_pool == this) {
    if (try_pop_own(tl_self, task)) {
      stolen = false;
      return true;
    }
    if (try_steal(tl_self, task)) {
      stolen = true;
      return true;
    }
    return false;
  }
  // External caller (the pool-owning thread joining a group): no own queue,
  // steal from anyone.
  for (auto& qp : queues_) {
    std::lock_guard<std::mutex> lock(qp->mu);
    if (qp->tasks.empty()) continue;
    task = std::move(qp->tasks.back());
    qp->tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    stolen = true;
    return true;
  }
  return false;
}

void ThreadPool::run_and_wait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Inline mode: same exception contract as submit().
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }

  auto group = std::make_shared<JoinGroup>();
  group->remaining = tasks.size();
  for (auto& task : tasks) {
    submit([group, task = std::move(task)] {
      // The decrement is RAII so a throwing task still settles the group
      // (run_task's catch handles the pool-level accounting afterwards).
      struct Leave {
        std::shared_ptr<JoinGroup> g;
        ~Leave() {
          std::lock_guard<std::mutex> lock(g->mu);
          if (--g->remaining == 0) g->cv.notify_all();
        }
      } leave{group};
      task();
    });
  }

  // Help until the group drains: every group task was enqueued above, so a
  // scan that claims nothing means they are all claimed by other lanes —
  // then (and only then) sleeping on the group cv is deadlock-free, because
  // a claimed task either finishes or re-enters here and helps in turn.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(group->mu);
      if (group->remaining == 0) return;
    }
    std::function<void()> task;
    bool stolen = false;
    if (try_claim(task, stolen)) {
      run_task(task, stolen);
      continue;
    }
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock, [&] { return group->remaining == 0; });
    return;
  }
}

std::size_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return steals_;
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  auto& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.front());
  q.tasks.pop_front();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    auto& q = *queues_[(self + off) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.back());  // steal the coldest end
    q.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::finish_task(bool stolen) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stolen) ++steals_;
  if (--pending_ == 0) idle_cv_.notify_all();
}

void ThreadPool::run_task(std::function<void()>& task, bool stolen) {
  TaskGuard guard{*this, stolen};
  try {
    task();
  } catch (...) {
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_self = self;
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (!try_pop_own(self, task)) {
      stolen = try_steal(self, task);
      if (!stolen) {
        std::unique_lock<std::mutex> lock(state_mu_);
        // Re-check under the lock: a task may have been submitted between
        // the failed scans and here. queued_ only changes to nonzero under
        // state_mu_, so this predicate cannot miss a wakeup.
        work_cv_.wait(lock, [this] {
          return shutdown_ || queued_.load(std::memory_order_relaxed) > 0;
        });
        if (shutdown_) return;
        continue;
      }
    }
    run_task(task, stolen);
  }
}

}  // namespace dimetrodon::runner
