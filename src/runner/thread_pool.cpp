#include "runner/thread_pool.hpp"

#include <utility>

namespace dimetrodon::runner {

ThreadPool::ThreadPool(std::size_t num_threads) {
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode still honours the exception contract: a throwing task is
    // counted, not propagated.
    try {
      task();
    } catch (...) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
    // Incremented before the push: a worker woken by the queued_ check may
    // briefly re-scan before the task lands in its deque, which is harmless;
    // incrementing outside state_mu_ could lose the wakeup entirely.
    queued_.fetch_add(1, std::memory_order_relaxed);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return steals_;
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  auto& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.front());
  q.tasks.pop_front();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    auto& q = *queues_[(self + off) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.back());  // steal the coldest end
    q.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::finish_task(bool stolen) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stolen) ++steals_;
  if (--pending_ == 0) idle_cv_.notify_all();
}

void ThreadPool::run_task(std::function<void()>& task, bool stolen) {
  TaskGuard guard{*this, stolen};
  try {
    task();
  } catch (...) {
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (!try_pop_own(self, task)) {
      stolen = try_steal(self, task);
      if (!stolen) {
        std::unique_lock<std::mutex> lock(state_mu_);
        // Re-check under the lock: a task may have been submitted between
        // the failed scans and here. queued_ only changes to nonzero under
        // state_mu_, so this predicate cannot miss a wakeup.
        work_cv_.wait(lock, [this] {
          return shutdown_ || queued_.load(std::memory_order_relaxed) > 0;
        });
        if (shutdown_) return;
        continue;
      }
    }
    run_task(task, stolen);
  }
}

}  // namespace dimetrodon::runner
