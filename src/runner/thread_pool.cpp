#include "runner/thread_pool.hpp"

#include <utility>

namespace dimetrodon::runner {

ThreadPool::ThreadPool(std::size_t num_threads) {
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return steals_;
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  auto& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    auto& q = *queues_[(self + off) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.back());  // steal the coldest end
    q.tasks.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (!try_pop_own(self, task)) {
      stolen = try_steal(self, task);
      if (!stolen) {
        std::unique_lock<std::mutex> lock(state_mu_);
        // Re-check under the lock: a task may have been submitted between
        // the failed scans and here.
        work_cv_.wait(lock, [this, self] {
          if (shutdown_) return true;
          for (std::size_t i = 0; i < queues_.size(); ++i) {
            std::lock_guard<std::mutex> qlock(queues_[i]->mu);
            if (!queues_[i]->tasks.empty()) return true;
          }
          return false;
        });
        if (shutdown_) return;
        continue;
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (stolen) ++steals_;
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dimetrodon::runner
