#include "runner/metrics.hpp"

#include <cstdio>
#include <fstream>

namespace dimetrodon::runner {

SweepMetrics::SweepMetrics(std::size_t total_runs)
    : total_(total_runs), start_(std::chrono::steady_clock::now()) {}

void SweepMetrics::on_run_started() {
  std::lock_guard<std::mutex> lock(mu_);
  ++in_flight_;
}

void SweepMetrics::on_cache_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  ++cache_hits_;
}

void SweepMetrics::on_run_executed(double sim_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  ++executed_;
  sim_seconds_done_ += sim_seconds;
}

void SweepMetrics::add_counters(const obs::CounterTotals& t) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ += t;
}

MetricsSnapshot SweepMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.total_runs = total_;
  s.cache_hits = cache_hits_;
  s.executed = executed_;
  s.completed = cache_hits_ + executed_;
  s.in_flight = in_flight_;
  s.cache_hit_rate =
      s.completed == 0
          ? 0.0
          : static_cast<double>(cache_hits_) / static_cast<double>(s.completed);
  s.sim_seconds_done = sim_seconds_done_;
  s.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if (s.wall_seconds > 0.0) {
    s.sim_seconds_per_second = sim_seconds_done_ / s.wall_seconds;
    s.runs_per_second = static_cast<double>(s.completed) / s.wall_seconds;
  }
  if (s.completed > 0 && s.completed < s.total_runs) {
    s.eta_seconds = s.wall_seconds *
                    static_cast<double>(s.total_runs - s.completed) /
                    static_cast<double>(s.completed);
  }
  s.counters = counters_;
  return s;
}

std::string SweepMetrics::progress_line(const MetricsSnapshot& s) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "sweep %zu/%zu done (%zu in flight) | cache %zu hits | "
                "%.0f sim-s/s | ETA %.0fs",
                s.completed, s.total_runs, s.in_flight, s.cache_hits,
                s.sim_seconds_per_second, s.eta_seconds);
  return buf;
}

std::string SweepMetrics::to_json(const MetricsSnapshot& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"total_runs\": %zu,\n"
      "  \"completed\": %zu,\n"
      "  \"cache_hits\": %zu,\n"
      "  \"runs_executed\": %zu,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"sim_seconds_done\": %.3f,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"sim_seconds_per_second\": %.1f,\n"
      "  \"runs_per_second\": %.2f,\n"
      "  \"counters\": ",
      s.total_runs, s.completed, s.cache_hits, s.executed, s.cache_hit_rate,
      s.sim_seconds_done, s.wall_seconds, s.sim_seconds_per_second,
      s.runs_per_second);
  std::string out = buf;
  out += obs::totals_to_json(s.counters, 2);
  out += "\n}\n";
  return out;
}

void SweepMetrics::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << to_json(snapshot());
}

}  // namespace dimetrodon::runner
