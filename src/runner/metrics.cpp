#include "runner/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

namespace dimetrodon::runner {

namespace {

/// Minimal RFC 8259 string escaping for exception messages and labels.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string error_to_json(const RunError& e, const char* pad) {
  char buf[256];
  std::string out;
  out += std::string(pad) + "{\n";
  std::snprintf(buf, sizeof buf, "%s  \"spec_index\": %zu,\n", pad,
                e.spec_index);
  out += buf;
  out += std::string(pad) + "  \"spec_label\": \"" +
         json_escape(e.spec_label) + "\",\n";
  out += std::string(pad) + "  \"key\": \"" + json_escape(e.key_hex) +
         "\",\n";
  std::snprintf(buf, sizeof buf, "%s  \"seed\": %llu,\n", pad,
                static_cast<unsigned long long>(e.seed));
  out += buf;
  out += std::string(pad) + "  \"what\": \"" + json_escape(e.what) + "\",\n";
  std::snprintf(buf, sizeof buf,
                "%s  \"transient\": %s,\n%s  \"attempts\": %u,\n"
                "%s  \"wall_seconds\": %.3f\n",
                pad, e.transient ? "true" : "false", pad, e.attempts, pad,
                e.wall_seconds);
  out += buf;
  out += std::string(pad) + "}";
  return out;
}

}  // namespace

SweepMetrics::SweepMetrics(std::size_t total_runs)
    : total_(total_runs), start_(std::chrono::steady_clock::now()) {}

void SweepMetrics::on_run_started() {
  std::lock_guard<std::mutex> lock(mu_);
  ++in_flight_;
}

void SweepMetrics::on_cache_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  ++cache_hits_;
}

void SweepMetrics::on_run_executed(double sim_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  ++executed_;
  sim_seconds_done_ += sim_seconds;
}

void SweepMetrics::on_run_failed(RunError error) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  ++counters_.runs_failed;
  errors_.push_back(std::move(error));
}

void SweepMetrics::on_run_retried() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.runs_retried;
}

void SweepMetrics::on_cache_write_retries(std::uint32_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.cache_write_retries += n;
}

void SweepMetrics::add_counters(const obs::CounterTotals& t) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ += t;
}

MetricsSnapshot SweepMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.total_runs = total_;
  s.cache_hits = cache_hits_;
  s.executed = executed_;
  s.failed = errors_.size();
  s.completed = cache_hits_ + executed_ + s.failed;
  s.in_flight = in_flight_;
  s.cache_hit_rate =
      s.completed == 0
          ? 0.0
          : static_cast<double>(cache_hits_) / static_cast<double>(s.completed);
  s.sim_seconds_done = sim_seconds_done_;
  s.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if (s.wall_seconds > 0.0) {
    s.sim_seconds_per_second = sim_seconds_done_ / s.wall_seconds;
    s.runs_per_second = static_cast<double>(s.completed) / s.wall_seconds;
  }
  if (s.completed > 0 && s.completed < s.total_runs) {
    s.eta_seconds = s.wall_seconds *
                    static_cast<double>(s.total_runs - s.completed) /
                    static_cast<double>(s.completed);
  }
  s.counters = counters_;
  s.errors = errors_;
  return s;
}

std::string SweepMetrics::progress_line(const MetricsSnapshot& s) {
  char buf[224];
  char failed[48] = "";
  if (s.failed > 0) {
    std::snprintf(failed, sizeof failed, " | %zu FAILED", s.failed);
  }
  std::snprintf(buf, sizeof buf,
                "sweep %zu/%zu done (%zu in flight) | cache %zu hits%s | "
                "%.0f sim-s/s | ETA %.0fs",
                s.completed, s.total_runs, s.in_flight, s.cache_hits, failed,
                s.sim_seconds_per_second, s.eta_seconds);
  return buf;
}

std::string SweepMetrics::to_json(const MetricsSnapshot& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"total_runs\": %zu,\n"
      "  \"completed\": %zu,\n"
      "  \"cache_hits\": %zu,\n"
      "  \"runs_executed\": %zu,\n"
      "  \"runs_failed\": %zu,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"sim_seconds_done\": %.3f,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"sim_seconds_per_second\": %.1f,\n"
      "  \"runs_per_second\": %.2f,\n"
      "  \"counters\": ",
      s.total_runs, s.completed, s.cache_hits, s.executed, s.failed,
      s.cache_hit_rate, s.sim_seconds_done, s.wall_seconds,
      s.sim_seconds_per_second, s.runs_per_second);
  std::string out = buf;
  out += obs::totals_to_json(s.counters, 2);
  out += ",\n  \"errors\": [";
  for (std::size_t i = 0; i < s.errors.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += error_to_json(s.errors[i], "    ");
  }
  out += s.errors.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void SweepMetrics::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << to_json(snapshot());
}

}  // namespace dimetrodon::runner
