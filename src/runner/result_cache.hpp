#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "runner/run_spec.hpp"

namespace dimetrodon::runner {

/// 128-bit content hash (two independent FNV-1a streams) of a canonical spec
/// string. The hex form names the cache file.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  static CacheKey of(const std::string& canonical);
  std::string hex() const;
  bool operator==(const CacheKey&) const = default;
};

/// On-disk cache of RunRecords keyed by the canonical spec content. One file
/// per key under `dir`; files are self-validating (version header, embedded
/// canonical spec compared verbatim, payload checksum, end marker), so a
/// corrupt, truncated, or colliding entry loads as a miss and is recomputed
/// rather than trusted. Writes go through a temp file + rename, making
/// concurrent writers of the same key benign.
class ResultCache {
 public:
  /// A disabled cache (empty `dir` or enabled=false) never hits and never
  /// writes.
  ResultCache(std::string dir, bool enabled);

  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }

  std::optional<RunRecord> load(const CacheKey& key,
                                const std::string& canonical) const;
  void store(const CacheKey& key, const std::string& canonical,
             const RunRecord& record) const;

  std::string path_for(const CacheKey& key) const;

  /// Serialization used inside cache files; exposed for tests.
  static std::string serialize_record(const RunRecord& record);
  static std::optional<RunRecord> parse_record(const std::string& payload);

 private:
  std::string dir_;
  bool enabled_;
};

}  // namespace dimetrodon::runner
