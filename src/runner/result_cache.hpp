#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "runner/run_spec.hpp"

namespace dimetrodon::runner {

/// 128-bit content hash (two independent FNV-1a streams) of a canonical spec
/// string. The hex form names the cache file.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  static CacheKey of(const std::string& canonical);
  std::string hex() const;
  bool operator==(const CacheKey&) const = default;
};

/// What a store() attempt did: whether the record landed, and how many
/// failed attempts preceded the outcome (surfaced as the sweep's
/// cache_write_retries counter).
struct StoreOutcome {
  bool stored = false;
  std::uint32_t retries = 0;
};

/// On-disk cache of RunRecords keyed by the canonical spec content. One file
/// per key under `dir`; files are self-validating (version header, embedded
/// canonical spec compared verbatim, payload checksum, end marker), so a
/// corrupt, truncated, or colliding entry loads as a miss and is recomputed
/// rather than trusted.
///
/// Writes are crash-safe: the record is written to a pid-suffixed temp file,
/// fsync'd, then renamed atomically over the final path (and the directory
/// fsync'd), so a process killed at any instant can leave at worst a stale
/// temp file — never a truncated record at a key path that parses.
/// Transient write failures are retried with deterministic linear backoff up
/// to `write_retry_limit`; the cache stays best-effort throughout (a failed
/// store loses the cache entry, not the result).
class ResultCache {
 public:
  /// A disabled cache (empty `dir` or enabled=false) never hits and never
  /// writes.
  ResultCache(std::string dir, bool enabled,
              std::uint32_t write_retry_limit = 2,
              std::uint32_t retry_backoff_ms = 5);

  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }

  std::optional<RunRecord> load(const CacheKey& key,
                                const std::string& canonical) const;
  StoreOutcome store(const CacheKey& key, const std::string& canonical,
                     const RunRecord& record) const;

  std::string path_for(const CacheKey& key) const;

  /// Serialization used inside cache files; exposed for tests.
  static std::string serialize_record(const RunRecord& record);
  static std::optional<RunRecord> parse_record(const std::string& payload);

 private:
  std::string dir_;
  bool enabled_;
  std::uint32_t write_retry_limit_;
  std::uint32_t retry_backoff_ms_;
};

}  // namespace dimetrodon::runner
