#include "runner/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ios>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "runner/env.hpp"
#include "runner/fault_injection.hpp"
#include "runner/thread_pool.hpp"

namespace dimetrodon::runner {

namespace {

/// Failures worth another attempt: injected transients and the filesystem
/// error classes. Simulation errors are deterministic — the same seed
/// replays to the same throw — so everything else fails immediately.
bool is_transient(const std::exception& e) {
  return dynamic_cast<const fault::TransientError*>(&e) != nullptr ||
         dynamic_cast<const std::system_error*>(&e) != nullptr ||
         dynamic_cast<const std::ios_base::failure*>(&e) != nullptr;
}

/// Human-readable identity of a grid point for RunError reports.
std::string spec_label(const RunSpec& spec) {
  if (spec.kind == RunSpec::Kind::kCustom) return spec.custom_tag;
  std::string label = spec.workload_key;
  label += " / ";
  label += spec.actuation.label();
  return label;
}

}  // namespace

SweepEngineConfig SweepEngineConfig::from_env(const std::string& bench_name) {
  SweepEngineConfig cfg;
  if (const auto t = env_size_t("DIMETRODON_SWEEP_THREADS")) {
    cfg.threads = *t;
  }
  if (const auto c = env_bool("DIMETRODON_SWEEP_CACHE")) {
    cfg.use_cache = *c;
  }
  if (const char* d = std::getenv("DIMETRODON_SWEEP_CACHE_DIR")) {
    if (*d == '\0') {
      warn_env_once("DIMETRODON_SWEEP_CACHE_DIR", d, "a non-empty path");
    } else {
      cfg.cache_dir = d;
    }
  }
  if (const auto p = env_bool("DIMETRODON_SWEEP_PROGRESS")) {
    cfg.progress = *p;
  }
  if (const auto r = env_size_t("DIMETRODON_SWEEP_RETRIES")) {
    cfg.run_retry_limit = static_cast<std::uint32_t>(*r);
  }
  if (!bench_name.empty()) {
    cfg.metrics_json_path = "bench_results/" + bench_name + "_metrics.json";
  }
  return cfg;
}

SweepEngine::SweepEngine(sched::MachineConfig base, SweepEngineConfig config)
    : base_(std::move(base)),
      config_(std::move(config)),
      cache_(config_.cache_dir, config_.use_cache,
             config_.cache_write_retry_limit, config_.retry_backoff_ms) {}

SnapshotCache::Snapshot SnapshotCache::get_or_build(
    const std::string& prefix,
    const std::function<sched::MachineSnapshot()>& build, bool* built) {
  if (built != nullptr) *built = false;
  std::promise<Snapshot> promise;
  std::shared_future<Snapshot> fut;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(prefix);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      map_.emplace(prefix, fut);
      builder = true;
    }
  }
  if (!builder) return fut.get();  // blocks until the builder publishes
  try {
    auto snap = std::make_shared<const sched::MachineSnapshot>(build());
    promise.set_value(snap);
    if (built != nullptr) *built = true;
    return snap;
  } catch (...) {
    // Concurrent waiters see the exception through the future; drop the
    // entry so a later run retries instead of inheriting a poisoned one.
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mu_);
      map_.erase(prefix);
    }
    throw;
  }
}

std::size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

RunRecord SweepEngine::execute(const RunSpec& spec,
                               const sched::MachineConfig& base,
                               SnapshotCache* snapshots,
                               bool* snapshot_built, const RunContext& ctx) {
  if (snapshot_built != nullptr) *snapshot_built = false;
  sched::MachineConfig cfg = spec.machine ? *spec.machine : base;
  cfg.seed = spec.seed;
  if (spec.kind == RunSpec::Kind::kCustom) {
    if (!spec.custom) {
      throw std::logic_error("kCustom RunSpec without a custom function");
    }
    return spec.custom(spec, cfg, ctx);
  }
  if (!spec.workload) {
    throw std::logic_error("kMeasure RunSpec without a workload factory");
  }
  harness::ExperimentRunner runner(cfg, spec.measurement);
  RunRecord rec;
  if (spec.warmup > 0) {
    // Warm start: get-or-build the shared warmup-prefix snapshot, then
    // ALWAYS fork the measured run from it (the builder run forks too, so
    // whether the snapshot came from this call or a cached one is
    // unobservable in the results).
    SnapshotCache::Snapshot snap;
    const auto build = [&] {
      return runner.build_warmup_snapshot(spec.workload, spec.warmup);
    };
    if (snapshots != nullptr) {
      snap = snapshots->get_or_build(canonical_warm_prefix(spec, base), build,
                                     snapshot_built);
    } else {
      snap = std::make_shared<const sched::MachineSnapshot>(build());
      if (snapshot_built != nullptr) *snapshot_built = true;
    }
    rec.result =
        runner.measure_warm(spec.workload, spec.actuation.to_setup(), *snap);
    return rec;
  }
  rec.result = runner.measure(spec.workload, spec.actuation.to_setup());
  return rec;
}

SweepResult SweepEngine::run(const std::vector<RunSpec>& specs) {
  SweepResult sweep;
  sweep.records.resize(specs.size());
  std::vector<RunRecord>& results = sweep.records;
  SweepMetrics metrics(specs.size());

  std::size_t threads = config_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The pool keeps its full width even when the grid is narrower: runs can
  // fan nested work (cluster fleet advancement) onto the spare lanes via
  // the RunContext. threads==1 executes the grid on the submitting thread
  // in spec order — the serial reference.
  ThreadPool pool(threads <= 1 ? 0 : threads);

  // Nested-parallelism arbitration, passed to every run: a 1-run sweep owns
  // the whole pool, a grid that oversubscribes the pool (2x or more) keeps
  // runs serial inside, anything between shares — work stealing fills the
  // tail as grid lanes drain. Strictly non-semantic (results are
  // bit-identical for every hint), so the heuristic is free to evolve.
  RunContext ctx;
  ctx.pool = pool.num_threads() > 0 ? &pool : nullptr;
  if (pool.num_threads() == 0) {
    ctx.lanes_hint = 1;
  } else if (specs.size() <= 1) {
    ctx.lanes_hint = threads;
  } else if (specs.size() >= 2 * threads) {
    ctx.lanes_hint = 1;
  } else {
    ctx.lanes_hint = 0;
  }

  std::atomic<bool> done{false};
  std::thread reporter;
  if (config_.progress) {
    reporter = std::thread([&] {
      // Redraw ~1 Hz, but poll finer so a fast (all-cached) sweep isn't
      // held up by the reporter.
      int ticks = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (done.load(std::memory_order_relaxed)) break;
        if (++ticks % 20 == 0) {
          std::fprintf(stderr, "[runner] %s\n",
                       SweepMetrics::progress_line(metrics.snapshot()).c_str());
        }
      }
    });
  }

  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.submit([&, i] {
      const RunSpec& spec = specs[i];
      metrics.on_run_started();
      const std::string canon = canonical_spec(spec, base_);
      const CacheKey key = CacheKey::of(canon);
      if (auto hit = cache_.load(key, canon)) {
        results[i] = std::move(*hit);
        metrics.add_counters(results[i].result.counters);
        metrics.on_cache_hit();
        return;
      }
      // Exception boundary: a throw from anywhere below — the simulator, a
      // custom run function, or an injected failpoint — becomes a RunError
      // on this record, never a dead sweep. Transient failures get
      // config_.run_retry_limit extra attempts with deterministic linear
      // backoff; everything else fails on the first attempt.
      const auto t0 = std::chrono::steady_clock::now();
      RunError err;
      err.spec_index = i;
      err.spec_label = spec_label(spec);
      err.key_hex = key.hex();
      err.seed = spec.seed;
      bool failed = false;
      bool snapshot_built = false;
      for (std::uint32_t attempt = 1;; ++attempt) {
        err.attempts = attempt;
        try {
          fault::maybe_throw("run.execute", key.hi);
          results[i] =
              execute(spec, base_, &snapshots_, &snapshot_built, ctx);
          break;
        } catch (const std::exception& e) {
          err.what = e.what();
          err.transient = is_transient(e);
        } catch (...) {
          err.what = "(non-std exception)";
          err.transient = false;
        }
        if (err.transient && attempt <= config_.run_retry_limit) {
          metrics.on_run_retried();
          std::this_thread::sleep_for(std::chrono::milliseconds(
              config_.retry_backoff_ms * attempt));
          continue;
        }
        failed = true;
        break;
      }
      if (failed) {
        err.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        results[i] = RunRecord{};  // drop any partial attempt state
        results[i].error = err;
        metrics.on_run_failed(std::move(err));
        return;  // failed runs never reach the cache
      }
      const StoreOutcome stored = cache_.store(key, canon, results[i]);
      metrics.on_cache_write_retries(stored.retries);
      metrics.add_counters(results[i].result.counters);
      if (spec.warmup > 0) {
        // Engine-level warm-start accounting: the machine itself never
        // touches these, so they live in the sweep totals, not the record.
        obs::CounterTotals warm{};
        warm.snapshot_builds = snapshot_built ? 1 : 0;
        warm.snapshot_forks = 1;
        metrics.add_counters(warm);
      }
      metrics.on_run_executed(results[i].sim_seconds_estimate());
    });
  }
  pool.wait_idle();

  done.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();

  for (const RunRecord& rec : results) {
    if (!rec.ok()) sweep.errors.push_back(*rec.error);
  }
  sweep.metrics = metrics.snapshot();
  last_metrics_ = sweep.metrics;
  if (config_.progress) {
    std::fprintf(stderr,
                 "[runner] done: %zu runs (%zu simulated, %zu cached, "
                 "%zu failed) in %.1fs on %zu threads | %.0f sim-s/s\n",
                 last_metrics_.completed, last_metrics_.executed,
                 last_metrics_.cache_hits, last_metrics_.failed,
                 last_metrics_.wall_seconds, threads,
                 last_metrics_.sim_seconds_per_second);
    for (const RunError& e : sweep.errors) {
      std::fprintf(stderr,
                   "[runner] FAILED run #%zu (%s, seed=%llx) after %u "
                   "attempt(s): %s\n",
                   e.spec_index, e.spec_label.c_str(),
                   static_cast<unsigned long long>(e.seed), e.attempts,
                   e.what.c_str());
    }
  }
  if (!config_.metrics_json_path.empty()) {
    metrics.write_json(config_.metrics_json_path);
  }
  return sweep;
}

}  // namespace dimetrodon::runner
