#include "runner/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runner/thread_pool.hpp"

namespace dimetrodon::runner {

SweepEngineConfig SweepEngineConfig::from_env(const std::string& bench_name) {
  SweepEngineConfig cfg;
  if (const char* t = std::getenv("DIMETRODON_SWEEP_THREADS")) {
    cfg.threads = static_cast<std::size_t>(std::strtoul(t, nullptr, 10));
  }
  if (const char* c = std::getenv("DIMETRODON_SWEEP_CACHE")) {
    cfg.use_cache = std::string(c) != "0";
  }
  if (const char* d = std::getenv("DIMETRODON_SWEEP_CACHE_DIR")) {
    cfg.cache_dir = d;
  }
  if (const char* p = std::getenv("DIMETRODON_SWEEP_PROGRESS")) {
    cfg.progress = std::string(p) != "0";
  }
  if (!bench_name.empty()) {
    cfg.metrics_json_path = "bench_results/" + bench_name + "_metrics.json";
  }
  return cfg;
}

SweepEngine::SweepEngine(sched::MachineConfig base, SweepEngineConfig config)
    : base_(std::move(base)),
      config_(std::move(config)),
      cache_(config_.cache_dir, config_.use_cache) {}

RunRecord SweepEngine::execute(const RunSpec& spec,
                               const sched::MachineConfig& base) {
  sched::MachineConfig cfg = spec.machine ? *spec.machine : base;
  cfg.seed = spec.seed;
  if (spec.kind == RunSpec::Kind::kCustom) {
    if (!spec.custom) {
      throw std::logic_error("kCustom RunSpec without a custom function");
    }
    return spec.custom(spec, cfg);
  }
  if (!spec.workload) {
    throw std::logic_error("kMeasure RunSpec without a workload factory");
  }
  harness::ExperimentRunner runner(cfg, spec.measurement);
  RunRecord rec;
  rec.result = runner.measure(spec.workload, spec.actuation.to_setup());
  return rec;
}

std::vector<RunRecord> SweepEngine::run(const std::vector<RunSpec>& specs) {
  std::vector<RunRecord> results(specs.size());
  SweepMetrics metrics(specs.size());

  std::size_t threads = config_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Never spin up more workers than runs; threads==1 executes the grid on
  // the submitting thread in spec order — the serial reference.
  threads = std::min(threads, specs.size());
  ThreadPool pool(threads <= 1 ? 0 : threads);

  std::atomic<bool> done{false};
  std::thread reporter;
  if (config_.progress) {
    reporter = std::thread([&] {
      // Redraw ~1 Hz, but poll finer so a fast (all-cached) sweep isn't
      // held up by the reporter.
      int ticks = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (done.load(std::memory_order_relaxed)) break;
        if (++ticks % 20 == 0) {
          std::fprintf(stderr, "[runner] %s\n",
                       SweepMetrics::progress_line(metrics.snapshot()).c_str());
        }
      }
    });
  }

  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.submit([&, i] {
      const RunSpec& spec = specs[i];
      metrics.on_run_started();
      const std::string canon = canonical_spec(spec, base_);
      const CacheKey key = CacheKey::of(canon);
      if (auto hit = cache_.load(key, canon)) {
        results[i] = std::move(*hit);
        metrics.on_cache_hit();
        return;
      }
      results[i] = execute(spec, base_);
      cache_.store(key, canon, results[i]);
      metrics.on_run_executed(results[i].sim_seconds_estimate());
    });
  }
  pool.wait_idle();

  done.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();

  last_metrics_ = metrics.snapshot();
  if (config_.progress) {
    std::fprintf(stderr,
                 "[runner] done: %zu runs (%zu simulated, %zu cached) in "
                 "%.1fs on %zu threads | %.0f sim-s/s\n",
                 last_metrics_.completed, last_metrics_.executed,
                 last_metrics_.cache_hits, last_metrics_.wall_seconds,
                 threads, last_metrics_.sim_seconds_per_second);
  }
  if (!config_.metrics_json_path.empty()) {
    metrics.write_json(config_.metrics_json_path);
  }
  return results;
}

}  // namespace dimetrodon::runner
