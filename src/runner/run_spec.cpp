#include "runner/run_spec.hpp"

#include <cstdio>
#include <stdexcept>

namespace dimetrodon::runner {

namespace {

void append_machine(sim::CanonWriter& w, const sched::MachineConfig& m) {
  w.open("machine");
  w.field("cores", m.num_cores);
  w.field("smt", m.smt_enabled);
  w.field("smt_tf", m.smt_throughput_factor);
  w.field("smt_cosched", m.smt_co_schedule_injection);
  const auto& f = m.floorplan;
  w.field("fp.cores", f.num_cores);
  w.field("fp.ambient", f.ambient_c);
  w.field("fp.die_c", f.die_capacitance);
  w.field("fp.die_pkg_r", f.die_to_pkg_resistance);
  w.field("fp.die_lat_r", f.die_lateral_resistance);
  w.field("fp.pkg_c", f.pkg_capacitance);
  w.field("fp.pkg_hs_r", f.pkg_to_hs_resistance);
  w.field("fp.hs_c", f.hs_capacitance);
  w.field("fp.hs_amb_r", f.hs_to_ambient_resistance);
  w.field("fp.fan", f.fan_speed_fraction);
  const auto& p = m.power;
  w.field("pw.dyn", p.core_dynamic_nominal_w);
  w.field("pw.f0", p.nominal_freq_ghz);
  w.field("pw.v0", p.nominal_voltage_v);
  w.field("pw.leak", p.core_leakage_nominal_w);
  w.field("pw.t0", p.leakage_ref_temp_c);
  w.field("pw.k", p.leakage_temp_coeff);
  w.field("pw.tsat", p.leakage_saturation_c);
  w.field("pw.unc0", p.uncore_base_w);
  w.field("pw.unc1", p.uncore_active_w);
  w.open_list("dvfs");
  for (std::size_t i = 0; i < m.dvfs.num_levels(); ++i) {
    w.field("f", m.dvfs.level(i).freq_ghz);
    w.field("v", m.dvfs.level(i).voltage_v);
  }
  w.close_list();
  w.field("meter.dt", m.meter.sample_interval);
  w.field("meter.gain", m.meter.gain_error_stddev);
  w.field("meter.noise", m.meter.sample_noise_w);
  w.field("meter.rec", m.meter.record_samples);
  w.field("sched", static_cast<std::uint64_t>(m.scheduler_kind));
  w.field("bsd.slice", m.scheduler.timeslice);
  w.field("bsd.estcpu", m.scheduler.estcpu_per_cpu_second);
  w.field("bsd.decay", m.scheduler.sleep_decay_per_second);
  w.field("ule.slice", m.ule.base_timeslice);
  w.field("ule.islice", m.ule.interactive_timeslice);
  w.field("ule.ithresh", m.ule.interactivity_threshold);
  w.field("ule.decay", m.ule.history_decay);
  w.field("ule.steal", m.ule.work_stealing);
  w.field("cstate", static_cast<std::uint64_t>(m.idle_cstate));
  w.field("csw", m.context_switch_cost);
  w.field("cmod_ovh", m.clock_modulation_overhead);
  w.field("tm", m.hw_thermal_throttle);
  w.field("prochot", m.prochot_c);
  w.field("prochot_rel", m.prochot_release_c);
  w.field("tm_period", m.thermal_monitor_period);
  w.field("tm_duty", m.prochot_duty_step);
  w.field("substep", m.thermal_substep);
  w.field("meter_on", m.enable_meter);
  w.field("idle_eq", m.start_at_idle_equilibrium);
  w.field("kpreempt", m.kernel_preempts_injection);
  w.field("suspend", m.injection_suspends_thread);
  w.close();
}

}  // namespace

harness::ActuationSetup ActuationSpec::to_setup() const {
  switch (kind) {
    case Kind::kNone:
      return harness::actuation::none();
    case Kind::kGlobal:
      return harness::actuation::dimetrodon(probability, quantum);
    case Kind::kGlobalStratified:
      return harness::actuation::dimetrodon_stratified(probability, quantum);
    case Kind::kVfs:
      return harness::actuation::vfs(level);
    case Kind::kTcc:
      return harness::actuation::tcc(level);
    case Kind::kGovernor:
      return harness::actuation::governed(governor, probability, quantum);
  }
  throw std::logic_error("unknown ActuationSpec::Kind");
}

double RunRecord::metric(const std::string& key) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  throw std::out_of_range("RunRecord has no metric '" + key + "'");
}

double RunRecord::sim_seconds_estimate() const {
  double s = result.sim_seconds + window.wall_seconds;
  for (const auto& [k, v] : extra) {
    if (k == "sim_seconds") s += v;
  }
  return s;
}

std::string canonical_spec(const RunSpec& spec,
                           const sched::MachineConfig& base) {
  sim::CanonWriter w(2048);
  w.preamble("dimetrodon-run-spec");
  w.field("kind", static_cast<std::uint64_t>(spec.kind));
  w.field("seed", spec.seed);
  w.field("workload", spec.workload_key);
  w.open("act");
  w.field("kind", static_cast<std::uint64_t>(spec.actuation.kind));
  w.field("p", spec.actuation.probability);
  w.field("L", spec.actuation.quantum);
  w.field("level", spec.actuation.level);
  if (spec.actuation.kind == ActuationSpec::Kind::kGovernor) {
    control::append_canonical_governor(w, spec.actuation.governor);
  }
  w.close();
  w.open("meas");
  const auto& mc = spec.measurement;
  w.field("settle_iters", static_cast<std::int64_t>(mc.max_settle_iterations));
  w.field("settle_chunk", mc.settle_chunk);
  w.field("settle_tol", mc.settle_tolerance_c);
  w.field("post_settle", mc.post_settle_run);
  w.field("window", mc.measure_window);
  w.field("poll", mc.sensor_poll);
  w.close();
  w.field("warmup", spec.warmup);
  append_machine(w, spec.machine ? *spec.machine : base);
  if (spec.kind == RunSpec::Kind::kCustom) {
    w.field("custom", spec.custom_tag);
  }
  return w.take();
}

std::string canonical_warm_prefix(const RunSpec& spec,
                                  const sched::MachineConfig& base) {
  sim::CanonWriter w(1024);
  w.preamble("dimetrodon-warm-prefix");
  w.field("seed", spec.seed);
  w.field("workload", spec.workload_key);
  w.field("warmup", spec.warmup);
  append_machine(w, spec.machine ? *spec.machine : base);
  return w.take();
}

}  // namespace dimetrodon::runner
