#include "runner/run_spec.hpp"

#include <cstdio>
#include <stdexcept>

namespace dimetrodon::runner {

namespace {

void put(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%a ", key, v);
  out += buf;
}

void put(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%llx ", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void put(std::string& out, const char* key, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%lld ", key,
                static_cast<long long>(v));
  out += buf;
}

void put(std::string& out, const char* key, bool v) {
  out += key;
  out += v ? "=1 " : "=0 ";
}

void append_machine(std::string& out, const sched::MachineConfig& m) {
  out += "machine{";
  put(out, "cores", m.num_cores);
  put(out, "smt", m.smt_enabled);
  put(out, "smt_tf", m.smt_throughput_factor);
  put(out, "smt_cosched", m.smt_co_schedule_injection);
  const auto& f = m.floorplan;
  put(out, "fp.cores", f.num_cores);
  put(out, "fp.ambient", f.ambient_c);
  put(out, "fp.die_c", f.die_capacitance);
  put(out, "fp.die_pkg_r", f.die_to_pkg_resistance);
  put(out, "fp.die_lat_r", f.die_lateral_resistance);
  put(out, "fp.pkg_c", f.pkg_capacitance);
  put(out, "fp.pkg_hs_r", f.pkg_to_hs_resistance);
  put(out, "fp.hs_c", f.hs_capacitance);
  put(out, "fp.hs_amb_r", f.hs_to_ambient_resistance);
  put(out, "fp.fan", f.fan_speed_fraction);
  const auto& p = m.power;
  put(out, "pw.dyn", p.core_dynamic_nominal_w);
  put(out, "pw.f0", p.nominal_freq_ghz);
  put(out, "pw.v0", p.nominal_voltage_v);
  put(out, "pw.leak", p.core_leakage_nominal_w);
  put(out, "pw.t0", p.leakage_ref_temp_c);
  put(out, "pw.k", p.leakage_temp_coeff);
  put(out, "pw.tsat", p.leakage_saturation_c);
  put(out, "pw.unc0", p.uncore_base_w);
  put(out, "pw.unc1", p.uncore_active_w);
  out += "dvfs[";
  for (std::size_t i = 0; i < m.dvfs.num_levels(); ++i) {
    put(out, "f", m.dvfs.level(i).freq_ghz);
    put(out, "v", m.dvfs.level(i).voltage_v);
  }
  out += "] ";
  put(out, "meter.dt", m.meter.sample_interval);
  put(out, "meter.gain", m.meter.gain_error_stddev);
  put(out, "meter.noise", m.meter.sample_noise_w);
  put(out, "meter.rec", m.meter.record_samples);
  put(out, "sched", static_cast<std::uint64_t>(m.scheduler_kind));
  put(out, "bsd.slice", m.scheduler.timeslice);
  put(out, "bsd.estcpu", m.scheduler.estcpu_per_cpu_second);
  put(out, "bsd.decay", m.scheduler.sleep_decay_per_second);
  put(out, "ule.slice", m.ule.base_timeslice);
  put(out, "ule.islice", m.ule.interactive_timeslice);
  put(out, "ule.ithresh", m.ule.interactivity_threshold);
  put(out, "ule.decay", m.ule.history_decay);
  put(out, "ule.steal", m.ule.work_stealing);
  put(out, "cstate", static_cast<std::uint64_t>(m.idle_cstate));
  put(out, "csw", m.context_switch_cost);
  put(out, "cmod_ovh", m.clock_modulation_overhead);
  put(out, "tm", m.hw_thermal_throttle);
  put(out, "prochot", m.prochot_c);
  put(out, "prochot_rel", m.prochot_release_c);
  put(out, "tm_period", m.thermal_monitor_period);
  put(out, "tm_duty", m.prochot_duty_step);
  put(out, "substep", m.thermal_substep);
  put(out, "meter_on", m.enable_meter);
  put(out, "idle_eq", m.start_at_idle_equilibrium);
  put(out, "kpreempt", m.kernel_preempts_injection);
  put(out, "suspend", m.injection_suspends_thread);
  out += "} ";
}

}  // namespace

harness::ActuationSetup ActuationSpec::to_setup() const {
  switch (kind) {
    case Kind::kNone:
      return harness::actuation::none();
    case Kind::kGlobal:
      return harness::actuation::dimetrodon(probability, quantum);
    case Kind::kGlobalStratified:
      return harness::actuation::dimetrodon_stratified(probability, quantum);
    case Kind::kVfs:
      return harness::actuation::vfs(level);
    case Kind::kTcc:
      return harness::actuation::tcc(level);
    case Kind::kGovernor:
      return harness::actuation::governed(governor, probability, quantum);
  }
  throw std::logic_error("unknown ActuationSpec::Kind");
}

double RunRecord::metric(const std::string& key) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  throw std::out_of_range("RunRecord has no metric '" + key + "'");
}

double RunRecord::sim_seconds_estimate() const {
  double s = result.sim_seconds + window.wall_seconds;
  for (const auto& [k, v] : extra) {
    if (k == "sim_seconds") s += v;
  }
  return s;
}

std::string canonical_spec(const RunSpec& spec,
                           const sched::MachineConfig& base) {
  std::string out;
  out.reserve(2048);
  out += "dimetrodon-run-spec v1 ";
  put(out, "kind", static_cast<std::uint64_t>(spec.kind));
  put(out, "seed", spec.seed);
  out += "workload=" + spec.workload_key + " ";
  out += "act{";
  put(out, "kind", static_cast<std::uint64_t>(spec.actuation.kind));
  put(out, "p", spec.actuation.probability);
  put(out, "L", spec.actuation.quantum);
  put(out, "level", spec.actuation.level);
  if (spec.actuation.kind == ActuationSpec::Kind::kGovernor) {
    control::append_canonical_governor(out, spec.actuation.governor);
  }
  out += "} meas{";
  const auto& mc = spec.measurement;
  put(out, "settle_iters", static_cast<std::int64_t>(mc.max_settle_iterations));
  put(out, "settle_chunk", mc.settle_chunk);
  put(out, "settle_tol", mc.settle_tolerance_c);
  put(out, "post_settle", mc.post_settle_run);
  put(out, "window", mc.measure_window);
  put(out, "poll", mc.sensor_poll);
  out += "} ";
  append_machine(out, spec.machine ? *spec.machine : base);
  if (spec.kind == RunSpec::Kind::kCustom) {
    out += "custom=" + spec.custom_tag + " ";
  }
  return out;
}

}  // namespace dimetrodon::runner
