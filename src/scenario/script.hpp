#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "control/governor.hpp"
#include "sim/canon.hpp"
#include "sim/time.hpp"

namespace dimetrodon::scenario {

/// What a scenario directive does to the fleet at its scheduled time. Each
/// kind maps onto one Cluster admin_* call (or, for kFailpoint, one keyed
/// arrival at the "scenario.directive" failpoint site).
enum class DirectiveKind : std::uint8_t {
  kDrain = 0,           // admin_drain(node)
  kUndrain = 1,         // admin_undrain(node)
  kRemove = 2,          // admin_remove(node)
  kJoin = 3,            // admin_join(join_spec, warmup); node ignored
  kSetInjection = 4,    // admin_set_injection(node, probability, quantum)
  kRetuneGovernor = 5,  // admin_retune_governor(node, governor)
  kSetFan = 6,          // admin_set_fan(node, fan_fraction)
  kCracSet = 7,         // set_crac_supply(crac_c); fleet-wide
  kFailpoint = 8,       // fault::maybe_throw("scenario.directive", fail_key)
};

std::string_view directive_kind_name(DirectiveKind k);

/// Marker node id for fleet-wide directives in the kScenarioDirective trace
/// event's 16-bit core field.
inline constexpr std::uint32_t kFleetWide = 0xffff;

/// One timed directive. Only the fields its kind reads are meaningful, but
/// every field is part of the canonical identity (append_canonical_script)
/// so an edited-but-unused field can never silently share a cache entry.
struct Directive {
  DirectiveKind kind = DirectiveKind::kDrain;
  sim::SimTime at = 0;
  std::uint32_t node = 0;  // target node; ignored by kJoin/kCracSet/kFailpoint

  cluster::NodeSpec join_spec{};   // kJoin: spec of the joining node
  sim::SimTime warmup = 0;         // kJoin: snapshot-warm span (0 = cold)
  double probability = 0.0;        // kSetInjection
  sim::SimTime quantum = sim::from_ms(10);  // kSetInjection
  control::GovernorSpec governor{};         // kRetuneGovernor
  double fan_fraction = 1.0;       // kSetFan
  double crac_c = 25.0;            // kCracSet
  std::uint64_t fail_key = 0;      // kFailpoint

  /// Marks this directive as a disturbance the RecoveryTracker must measure
  /// recovery from. Builders default it per kind (drains, removals, fan
  /// degradation, heat-wave onset and failpoints disturb; joins, undrains
  /// and retunes are remedies).
  bool mark_recovery = false;
};

/// A timed list of directives driving one cluster through churn, rolling
/// updates and correlated failures. Builder methods append and return *this
/// for chaining; the engine applies directives in stable (time, insertion)
/// order, so same-time directives run in the order written.
struct ScenarioScript {
  std::vector<Directive> directives;

  ScenarioScript& drain(sim::SimTime at, std::uint32_t node);
  ScenarioScript& undrain(sim::SimTime at, std::uint32_t node);
  ScenarioScript& remove(sim::SimTime at, std::uint32_t node);
  ScenarioScript& join(sim::SimTime at, const cluster::NodeSpec& spec,
                       sim::SimTime warmup = 0);
  ScenarioScript& set_injection(sim::SimTime at, std::uint32_t node, double p,
                                sim::SimTime quantum = sim::from_ms(10));
  ScenarioScript& retune_governor(sim::SimTime at, std::uint32_t node,
                                  const control::GovernorSpec& spec);
  ScenarioScript& set_fan(sim::SimTime at, std::uint32_t node,
                          double fraction);
  ScenarioScript& crac_set(sim::SimTime at, double supply_c,
                           bool mark = true);
  ScenarioScript& failpoint(sim::SimTime at, std::uint64_t key);

  /// Rolling config wave: retarget injection probability on every node,
  /// rack-by-rack in id order — rack r's nodes change at
  /// start + r * stagger. Exercises the live InjectionArbiter /
  /// sys_set_global paths the way a staged fleet rollout would.
  ScenarioScript& rolling_injection(sim::SimTime start, sim::SimTime stagger,
                                    std::size_t num_nodes,
                                    std::size_t nodes_per_rack, double p,
                                    sim::SimTime quantum = sim::from_ms(10));

  /// Correlated ambient failure: a CRAC heat wave ramping from `base_c` to
  /// `peak_c` in `steps` piecewise-constant increments over `ramp`, holding
  /// the peak for `hold`, then ramping back down symmetrically and ending
  /// at base_c. Only the first step marks recovery (the wave onset is the
  /// disturbance; the rest is its shape).
  ScenarioScript& heat_wave(sim::SimTime start, double base_c, double peak_c,
                            sim::SimTime ramp, sim::SimTime hold,
                            std::size_t steps = 4);

  bool empty() const { return directives.empty(); }
};

/// Append the script's canonical fragment ("scenario-v1" section: the full
/// directive list, every field). Rides sim::kCanonVersion like every other
/// canonical producer.
void append_canonical_script(sim::CanonWriter& w, const ScenarioScript& s);

}  // namespace dimetrodon::scenario
