#pragma once

#include <cstdint>
#include <vector>

#include "analysis/histogram.hpp"
#include "obs/trace_sink.hpp"
#include "sim/time.hpp"

namespace dimetrodon::scenario {

/// Per-event recovery metrics derived from a scenario run's cluster-scope
/// trace (finalized by RecoveryTracker).
struct RecoveryReport {
  /// p99 latency (s) over the windows before the first marked disturbance
  /// (the whole run when nothing is marked or nothing completed earlier).
  double baseline_p99_s = 0.0;
  /// The pass/fail line recovery is judged against: max(1.5 * the worst
  /// single post-settle pre-disturbance window's p99, baseline + 20 ms) —
  /// returning to the normal per-window envelope, not to a
  /// quieter-than-normal band.
  double threshold_p99_s = 0.0;
  /// Worst (largest) time-to-p99-recovery across marked disturbances, in
  /// seconds: from the disturbance to the end of the LAST window whose p99
  /// exceeds the threshold (latency damage lands at completion time, so it
  /// lags the event; empty windows are calm). 0 when nothing was marked or
  /// no window ever failed; -1 when the run ends without three full calm
  /// windows after the last failure (never recovered).
  double recovery_p99_s = 0.0;
  /// Peak of the end-of-window in-flight estimate (routed - completed,
  /// cumulative; shed arrivals never count as routed).
  std::uint64_t peak_backlog = 0;
  std::uint64_t requests_shed = 0;
  /// Total node-seconds spent PROCHOT-draining (sum over drain episodes;
  /// episodes still open at finalize are closed at the run end).
  double drain_total_s = 0.0;
  std::uint64_t drain_episodes = 0;
  std::size_t marks = 0;

  bool recovered() const { return recovery_p99_s >= 0.0; }
};

/// Streams a cluster-scope trace into fixed windows (default 1 s) and
/// derives the recovery metrics above. Attach via the cluster's
/// trace_sink_factory (the scenario engine tees it in); events arrive
/// slightly out of order across sweep boundaries (each node's completions
/// carry its machine-local clock), so windows are indexed by timestamp, not
/// arrival order — the derived metrics are bit-identical at every
/// fleet-lane and sweep-thread count.
class RecoveryTracker final : public obs::TraceSink {
 public:
  /// `window`: aggregation window length. `settle`: thermal warm-up span
  /// excluded from both the baseline and the failure scan — a fleet takes
  /// several seconds to reach steady temperature, and windows from the
  /// cold start would make the baseline look quieter than normal.
  explicit RecoveryTracker(sim::SimTime window = sim::kSecond,
                           sim::SimTime settle = 0);

  void on_event(const obs::TraceEvent& e) override;

  /// Record a disturbance the report must measure recovery from (the
  /// engine calls this for every mark_recovery directive).
  void mark_disturbance(sim::SimTime at);

  /// Derive the report; `end` is the run's final time (closes open drain
  /// episodes and bounds the window range). Idempotent-ish: call once,
  /// after the run.
  RecoveryReport finalize(sim::SimTime end) const;

 private:
  struct Window {
    analysis::PercentileHistogram latency;
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
  };
  struct DrainEpisode {
    std::uint32_t node = 0;
    sim::SimTime began = 0;
  };

  Window& window_at(sim::SimTime at);

  sim::SimTime window_len_;
  sim::SimTime settle_;
  std::vector<Window> windows_;
  std::vector<sim::SimTime> marks_;
  std::vector<DrainEpisode> open_drains_;
  double drain_total_s_ = 0.0;
  std::uint64_t drain_episodes_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace dimetrodon::scenario
