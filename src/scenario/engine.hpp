#pragma once

#include <memory>
#include <string>

#include "cluster/sweep.hpp"
#include "runner/run_spec.hpp"
#include "scenario/recovery.hpp"
#include "scenario/script.hpp"

namespace dimetrodon::scenario {

/// One deterministic serving scenario: a base cluster run (fleet, policy,
/// duration, optionally an arrival trace) plus a timed directive script.
/// Compiles to a canonical-tagged sweep-engine RunSpec via to_run_spec, so
/// scenarios cache, parallelize and fault-isolate like every other run.
struct ScenarioSpec {
  cluster::ClusterRunSpec base{};
  ScenarioScript script{};
  /// RecoveryTracker window length (part of the canonical identity — it
  /// changes the derived metrics, and derived metrics are cached).
  sim::SimTime recovery_window = sim::kSecond;
  /// Thermal warm-up span excluded from the recovery baseline and failure
  /// scan (also canonical identity).
  sim::SimTime recovery_settle = 0;
};

struct ScenarioOutcome {
  cluster::ClusterResult result;
  RecoveryReport recovery;
};

/// Runs a scenario: builds the cluster (tee-ing a RecoveryTracker into its
/// trace sink), advances it in segments between directive times, and
/// applies each directive through the cluster's admin_* surface — emitting
/// a kScenarioDirective trace event and visiting the "scenario.directive"
/// failpoint site (keyed with the directive's fail_key) per application.
/// Directives apply in stable (time, insertion) order; directives timed
/// past the run's duration are never applied. The whole run is a pure
/// function of (ScenarioSpec) — bit-identical at every sweep thread count
/// and fleet lane count, like the cluster underneath.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioSpec spec);

  ScenarioOutcome run();

 private:
  void apply(cluster::Cluster& c, const Directive& d, std::uint64_t index);

  ScenarioSpec spec_;
  std::shared_ptr<RecoveryTracker> tracker_;
};

/// Canonical text for a scenario: the cluster tag plus the scenario-v1
/// fragment (directive list + recovery window).
std::string canonical_scenario_tag(const ScenarioSpec& spec);

/// Package as a sweep-engine RunSpec (kCustom). On top of the cluster
/// extras, the record carries the recovery metrics: recovery_p99_s (-1 =
/// never recovered), baseline_p99_s, threshold_p99_s, peak_backlog,
/// requests_shed, requests_rehomed, drain_total_s, drain_episodes, marks.
runner::RunSpec to_run_spec(const ScenarioSpec& spec);

}  // namespace dimetrodon::scenario
