#include "scenario/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "runner/fault_injection.hpp"

namespace dimetrodon::scenario {

namespace {

/// Forwards one cluster-scope event stream to the RecoveryTracker and (when
/// the user configured their own sink) to it as well.
class TeeSink final : public obs::TraceSink {
 public:
  TeeSink(std::shared_ptr<obs::TraceSink> a, std::shared_ptr<obs::TraceSink> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  void on_event(const obs::TraceEvent& e) override {
    if (a_) a_->on_event(e);
    if (b_) b_->on_event(e);
  }

 private:
  std::shared_ptr<obs::TraceSink> a_;
  std::shared_ptr<obs::TraceSink> b_;
};

}  // namespace

ScenarioEngine::ScenarioEngine(ScenarioSpec spec)
    : spec_(std::move(spec)),
      tracker_(std::make_shared<RecoveryTracker>(spec_.recovery_window,
                                                 spec_.recovery_settle)) {}

void ScenarioEngine::apply(cluster::Cluster& c, const Directive& d,
                           std::uint64_t index) {
  // Every directive is a failpoint arrival: a storm scenario arms
  // "scenario.directive" (optionally keyed) and the sweep engine's fault
  // isolation turns the throw into a captured RunError, not a crashed grid.
  runner::fault::maybe_throw("scenario.directive", d.fail_key);

  std::uint32_t node = d.node;
  switch (d.kind) {
    case DirectiveKind::kDrain:
      c.admin_drain(d.node);
      break;
    case DirectiveKind::kUndrain:
      c.admin_undrain(d.node);
      break;
    case DirectiveKind::kRemove:
      c.admin_remove(d.node);
      break;
    case DirectiveKind::kJoin:
      node = static_cast<std::uint32_t>(c.admin_join(d.join_spec, d.warmup));
      break;
    case DirectiveKind::kSetInjection:
      c.admin_set_injection(d.node, d.probability, d.quantum);
      break;
    case DirectiveKind::kRetuneGovernor:
      c.admin_retune_governor(d.node, d.governor);
      break;
    case DirectiveKind::kSetFan:
      c.admin_set_fan(d.node, d.fan_fraction);
      break;
    case DirectiveKind::kCracSet:
      c.set_crac_supply(d.crac_c);
      break;
    case DirectiveKind::kFailpoint:
      // The maybe_throw above IS the directive; nothing else to do.
      break;
  }
  c.tracer().scenario_directive(d.at, static_cast<std::uint8_t>(d.kind), node,
                                index);
  if (d.mark_recovery) tracker_->mark_disturbance(d.at);
}

ScenarioOutcome ScenarioEngine::run() {
  cluster::ClusterConfig cc = spec_.base.cluster;
  // Tee the recovery tracker into the cluster-scope sink so the derived
  // metrics see the routed/completed/shed/drain stream whether or not the
  // caller attached their own recorder.
  const obs::SinkFactory user_factory = cc.trace_sink_factory;
  const std::shared_ptr<RecoveryTracker> tracker = tracker_;
  cc.trace_sink_factory = [user_factory, tracker]() {
    return std::make_shared<TeeSink>(tracker,
                                     user_factory ? user_factory() : nullptr);
  };

  cluster::Cluster c(std::move(cc), cluster::make_policy(
                                        spec_.base.policy,
                                        spec_.base.injection_threshold));

  // Stable order by time: same-time directives apply in the order written.
  std::vector<const Directive*> order;
  order.reserve(spec_.script.directives.size());
  for (const Directive& d : spec_.script.directives) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(),
                   [](const Directive* a, const Directive* b) {
                     return a->at < b->at;
                   });

  const sim::SimTime duration = spec_.base.duration;
  cluster::ClusterResult result;
  sim::SimTime t = 0;
  for (const Directive* d : order) {
    if (d->at < 0 || d->at > duration) continue;  // outside the run: skipped
    if (d->at > t) {
      result = c.run(d->at - t);
      t = d->at;
    }
    apply(c, *d,
          static_cast<std::uint64_t>(d - spec_.script.directives.data()));
  }
  result = c.run(duration - t);

  ScenarioOutcome out;
  out.result = std::move(result);
  out.recovery = tracker_->finalize(duration);
  return out;
}

std::string canonical_scenario_tag(const ScenarioSpec& spec) {
  sim::CanonWriter w(2048);
  w.raw(cluster::canonical_cluster_tag(spec.base).c_str());
  w.field("rwin", spec.recovery_window);
  w.field("rsettle", spec.recovery_settle);
  append_canonical_script(w, spec.script);
  return w.take();
}

runner::RunSpec to_run_spec(const ScenarioSpec& spec) {
  runner::RunSpec rs;
  rs.kind = runner::RunSpec::Kind::kCustom;
  rs.seed = spec.base.cluster.seed;
  rs.machine = spec.base.cluster.machine;
  rs.custom_tag = canonical_scenario_tag(spec);
  rs.custom = [spec](const runner::RunSpec&, const sched::MachineConfig& cfg,
                     const runner::RunContext& ctx) {
    // Thread the sweep-seeded machine config back like the cluster bridge
    // does, and ride the engine's pool/lanes for fleet advancement.
    ScenarioSpec s = spec;
    s.base.cluster.machine = cfg;
    s.base.cluster.seed = cfg.seed;
    s.base.cluster.shared_pool = ctx.pool;
    s.base.cluster.shared_lanes = ctx.lanes_hint;
    ScenarioEngine engine(std::move(s));
    const ScenarioOutcome out = engine.run();
    const cluster::ClusterResult& r = out.result;
    const RecoveryReport& rec_rep = out.recovery;

    runner::RunRecord rec;
    rec.result.label = r.policy;
    rec.result.throughput = r.throughput_rps;
    rec.result.avg_sensor_temp_c = r.fleet_mean_sensor_c;
    rec.result.qos = r.qos;
    rec.result.counters = r.counters;
    rec.result.sim_seconds = r.duration_s * static_cast<double>(r.nodes.size());
    rec.extra = {
        {"fleet_peak_sensor_c", r.fleet_peak_sensor_c},
        {"fleet_peak_exact_c", r.fleet_peak_exact_c},
        {"fleet_mean_sensor_c", r.fleet_mean_sensor_c},
        {"fleet_peak_inlet_c", r.fleet_peak_inlet_c},
        {"offered", static_cast<double>(r.offered)},
        {"completed", static_cast<double>(r.completed)},
        {"drains", static_cast<double>(r.drains)},
        {"energy_j", r.total_energy_j},
        {"nodes", static_cast<double>(r.nodes.size())},
        {"racks", static_cast<double>(r.num_racks)},
        {"osc_amp_temp_c", r.stability.osc_amplitude_temp_c},
        {"osc_amp_duty", r.stability.osc_amplitude_duty},
        {"duty_reversals", static_cast<double>(r.stability.duty_reversals)},
        {"overshoot_c", r.stability.overshoot_c},
        {"settling_s", r.stability.settling_time_s},
        // Scenario recovery metrics (-1 recovery = never recovered).
        {"recovery_p99_s", rec_rep.recovery_p99_s},
        {"baseline_p99_s", rec_rep.baseline_p99_s},
        {"threshold_p99_s", rec_rep.threshold_p99_s},
        {"peak_backlog", static_cast<double>(rec_rep.peak_backlog)},
        {"requests_shed", static_cast<double>(rec_rep.requests_shed)},
        {"requests_rehomed",
         static_cast<double>(r.counters.requests_rehomed)},
        {"drain_total_s", rec_rep.drain_total_s},
        {"drain_episodes", static_cast<double>(rec_rep.drain_episodes)},
        {"recovery_marks", static_cast<double>(rec_rep.marks)},
    };
    return rec;
  };
  return rs;
}

}  // namespace dimetrodon::scenario
