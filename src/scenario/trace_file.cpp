#include "scenario/trace_file.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dimetrodon::scenario {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'T', 'R', 'A', 'C', 'E', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::string& in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void reject(const char* why) {
  throw std::runtime_error(std::string("arrival trace: ") + why);
}

}  // namespace

std::string encode_trace(const cluster::ArrivalTrace& trace) {
  std::string out;
  out.reserve(kTraceHeaderBytes + kTraceRecordBytes * trace.records.size());
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kTraceFormatVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, trace.records.size());
  put_u64(out, trace.content_hash());
  for (const cluster::ArrivalRecord& r : trace.records) {
    put_u64(out, static_cast<std::uint64_t>(r.at));
    put_u32(out, r.affinity);
    out.push_back(static_cast<char>(r.size_class));
    out.append(3, '\0');
  }
  return out;
}

cluster::ArrivalTrace decode_trace(const std::string& bytes) {
  if (bytes.size() < kTraceHeaderBytes) reject("truncated header");
  if (bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    reject("bad magic");
  }
  if (get_u32(bytes, 8) != kTraceFormatVersion) reject("unknown version");
  if (get_u32(bytes, 12) != 0) reject("nonzero reserved word");
  const std::uint64_t count = get_u64(bytes, 16);
  // Exact-length check: a file truncated (or padded) at ANY byte fails
  // here, before any record is interpreted.
  if (count > (bytes.size() - kTraceHeaderBytes) / kTraceRecordBytes ||
      bytes.size() != kTraceHeaderBytes + kTraceRecordBytes * count) {
    reject("length does not match record count");
  }
  const std::uint64_t expect_hash = get_u64(bytes, 24);

  cluster::ArrivalTrace trace;
  trace.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off =
        kTraceHeaderBytes + kTraceRecordBytes * static_cast<std::size_t>(i);
    cluster::ArrivalRecord r;
    r.at = static_cast<sim::SimTime>(get_u64(bytes, off));
    r.affinity = get_u32(bytes, off + 8);
    r.size_class = static_cast<std::uint8_t>(bytes[off + 12]);
    if (r.at < 0) reject("negative timestamp");
    if (!trace.records.empty() && r.at <= trace.records.back().at) {
      reject("timestamps not strictly increasing");
    }
    if (r.size_class > cluster::ArrivalRecord::kMaxSizeClass) {
      reject("size class out of range");
    }
    trace.records.push_back(r);
  }
  if (trace.content_hash() != expect_hash) reject("content hash mismatch");
  return trace;
}

void save_trace(const std::string& path,
                const cluster::ArrivalTrace& trace) {
  const std::string bytes = encode_trace(trace);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) reject("cannot open file for writing");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) reject("write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    reject("rename failed");
  }
}

cluster::ArrivalTrace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) reject("cannot open file");
  std::ostringstream ss;
  ss << f.rdbuf();
  return decode_trace(ss.str());
}

}  // namespace dimetrodon::scenario
