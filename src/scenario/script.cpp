#include "scenario/script.hpp"

#include <stdexcept>

namespace dimetrodon::scenario {

std::string_view directive_kind_name(DirectiveKind k) {
  switch (k) {
    case DirectiveKind::kDrain:          return "drain";
    case DirectiveKind::kUndrain:        return "undrain";
    case DirectiveKind::kRemove:         return "remove";
    case DirectiveKind::kJoin:           return "join";
    case DirectiveKind::kSetInjection:   return "set_injection";
    case DirectiveKind::kRetuneGovernor: return "retune_governor";
    case DirectiveKind::kSetFan:         return "set_fan";
    case DirectiveKind::kCracSet:        return "crac_set";
    case DirectiveKind::kFailpoint:      return "failpoint";
  }
  return "unknown";
}

ScenarioScript& ScenarioScript::drain(sim::SimTime at, std::uint32_t node) {
  Directive d;
  d.kind = DirectiveKind::kDrain;
  d.at = at;
  d.node = node;
  d.mark_recovery = true;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::undrain(sim::SimTime at, std::uint32_t node) {
  Directive d;
  d.kind = DirectiveKind::kUndrain;
  d.at = at;
  d.node = node;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::remove(sim::SimTime at, std::uint32_t node) {
  Directive d;
  d.kind = DirectiveKind::kRemove;
  d.at = at;
  d.node = node;
  d.mark_recovery = true;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::join(sim::SimTime at,
                                     const cluster::NodeSpec& spec,
                                     sim::SimTime warmup) {
  Directive d;
  d.kind = DirectiveKind::kJoin;
  d.at = at;
  d.join_spec = spec;
  d.warmup = warmup;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::set_injection(sim::SimTime at,
                                              std::uint32_t node, double p,
                                              sim::SimTime quantum) {
  Directive d;
  d.kind = DirectiveKind::kSetInjection;
  d.at = at;
  d.node = node;
  d.probability = p;
  d.quantum = quantum;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::retune_governor(
    sim::SimTime at, std::uint32_t node, const control::GovernorSpec& spec) {
  Directive d;
  d.kind = DirectiveKind::kRetuneGovernor;
  d.at = at;
  d.node = node;
  d.governor = spec;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::set_fan(sim::SimTime at, std::uint32_t node,
                                        double fraction) {
  Directive d;
  d.kind = DirectiveKind::kSetFan;
  d.at = at;
  d.node = node;
  d.fan_fraction = fraction;
  // A fan *degradation* is a disturbance; a restoration is the remedy.
  d.mark_recovery = fraction < 1.0;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::crac_set(sim::SimTime at, double supply_c,
                                         bool mark) {
  Directive d;
  d.kind = DirectiveKind::kCracSet;
  d.at = at;
  d.node = kFleetWide;
  d.crac_c = supply_c;
  d.mark_recovery = mark;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::failpoint(sim::SimTime at,
                                          std::uint64_t key) {
  Directive d;
  d.kind = DirectiveKind::kFailpoint;
  d.at = at;
  d.node = kFleetWide;
  d.fail_key = key;
  d.mark_recovery = true;
  directives.push_back(d);
  return *this;
}

ScenarioScript& ScenarioScript::rolling_injection(sim::SimTime start,
                                                  sim::SimTime stagger,
                                                  std::size_t num_nodes,
                                                  std::size_t nodes_per_rack,
                                                  double p,
                                                  sim::SimTime quantum) {
  if (nodes_per_rack == 0) {
    throw std::invalid_argument("rolling_injection: nodes_per_rack == 0");
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const std::size_t rack = i / nodes_per_rack;
    set_injection(start + static_cast<sim::SimTime>(rack) * stagger,
                  static_cast<std::uint32_t>(i), p, quantum);
  }
  return *this;
}

ScenarioScript& ScenarioScript::heat_wave(sim::SimTime start, double base_c,
                                          double peak_c, sim::SimTime ramp,
                                          sim::SimTime hold,
                                          std::size_t steps) {
  if (steps == 0) throw std::invalid_argument("heat_wave: steps == 0");
  const sim::SimTime step_dt = ramp / static_cast<sim::SimTime>(steps);
  const double step_dc =
      (peak_c - base_c) / static_cast<double>(steps);
  // Ramp up: the first step (the onset) marks recovery; the rest shape it.
  for (std::size_t s = 1; s <= steps; ++s) {
    crac_set(start + static_cast<sim::SimTime>(s - 1) * step_dt,
             base_c + step_dc * static_cast<double>(s), s == 1);
  }
  // Hold at peak, then ramp back down and finish at base.
  const sim::SimTime down_start = start + ramp + hold;
  for (std::size_t s = 1; s <= steps; ++s) {
    crac_set(down_start + static_cast<sim::SimTime>(s - 1) * step_dt,
             peak_c - step_dc * static_cast<double>(s), false);
  }
  return *this;
}

void append_canonical_script(sim::CanonWriter& w, const ScenarioScript& s) {
  w.open("scenario-v1");
  w.open_list("d");
  for (const Directive& d : s.directives) {
    // EVERY field, not just the ones this kind reads: the Directive doc
    // promises an edited-but-unused field can never silently share a cache
    // entry, and conservative misses are cheaper than a stale hit after a
    // future kind starts reading a field the tag omitted.
    w.field("k", static_cast<std::uint64_t>(d.kind));
    w.field("at", d.at);
    w.field("n", static_cast<std::uint64_t>(d.node));
    w.field("m", d.mark_recovery);
    w.field("warm", d.warmup);
    w.field("p", d.probability);
    w.field("L", d.quantum);
    w.field("fan", d.fan_fraction);
    w.field("c", d.crac_c);
    w.field("key", d.fail_key);
    w.field("jfan", d.join_spec.fan_speed_fraction);
    w.field("jp", d.join_spec.injection_probability);
    w.field("jL", d.join_spec.injection_quantum);
    w.field("jgov", d.join_spec.governor.enabled());
    if (d.join_spec.governor.enabled()) {
      control::append_canonical_governor(w, d.join_spec.governor);
    }
    w.field("gov", d.governor.enabled());
    if (d.governor.enabled()) {
      control::append_canonical_governor(w, d.governor);
    }
  }
  w.close_list();
  w.close();
}

}  // namespace dimetrodon::scenario
