#pragma once

#include <string>

#include "cluster/arrival_trace.hpp"
#include "obs/trace_sink.hpp"

namespace dimetrodon::scenario {

/// Versioned on-disk arrival-trace format, byte-order and padding exact so a
/// file written anywhere loads everywhere:
///
///   offset  size  field
///        0     8  magic "DMTRACE1"
///        8     4  u32 version (= 1), little-endian
///       12     4  u32 reserved (= 0)
///       16     8  u64 record count, little-endian
///       24     8  u64 FNV-1a content hash (ArrivalTrace::content_hash)
///       32   16*n records: { i64 at (LE), u32 affinity (LE),
///                            u8 size_class, 3 zero pad bytes }
///
/// load_trace rejects, with std::runtime_error naming the defect: short or
/// oversized files (truncation at ANY byte fails the exact-length check),
/// bad magic, unknown version, nonzero reserved word, hash mismatch,
/// non-strictly-increasing or negative timestamps, and out-of-range size
/// classes — a damaged trace can never silently replay as a different load.
inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 32;
inline constexpr std::size_t kTraceRecordBytes = 16;

/// Serialize to the format above (in memory / to disk). save_trace writes
/// via a temp file + rename so a crashed writer never leaves a half trace
/// at the target path.
std::string encode_trace(const cluster::ArrivalTrace& trace);
void save_trace(const std::string& path, const cluster::ArrivalTrace& trace);

/// Parse / load (throws std::runtime_error as documented above).
cluster::ArrivalTrace decode_trace(const std::string& bytes);
cluster::ArrivalTrace load_trace(const std::string& path);

/// Cluster-scope trace sink that records the routed-arrival stream
/// (kRequestRouted events: time, size class, affinity) into an ArrivalTrace.
/// Attach via ClusterConfig::trace_sink_factory; replaying the recording of
/// a Poisson run reproduces the original bit-for-bit, because the replay
/// path never draws from the source RNG stream.
class TraceRecorder final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& e) override {
    if (e.kind != obs::EventKind::kRequestRouted) return;
    cluster::ArrivalRecord r;
    r.at = e.at;
    r.size_class = static_cast<std::uint8_t>(e.arg);
    r.affinity = static_cast<std::uint32_t>(e.value);
    trace_.records.push_back(r);
  }

  const cluster::ArrivalTrace& trace() const { return trace_; }
  cluster::ArrivalTrace take() { return std::move(trace_); }

 private:
  cluster::ArrivalTrace trace_;
};

}  // namespace dimetrodon::scenario
