#include "scenario/recovery.hpp"

#include <algorithm>

namespace dimetrodon::scenario {

RecoveryTracker::RecoveryTracker(sim::SimTime window, sim::SimTime settle)
    : window_len_(window), settle_(std::max<sim::SimTime>(0, settle)) {
  if (window <= 0) window_len_ = sim::kSecond;
}

RecoveryTracker::Window& RecoveryTracker::window_at(sim::SimTime at) {
  const std::size_t idx =
      at <= 0 ? 0 : static_cast<std::size_t>(at / window_len_);
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  return windows_[idx];
}

void RecoveryTracker::on_event(const obs::TraceEvent& e) {
  switch (e.kind) {
    case obs::EventKind::kRequestRouted:
      ++window_at(e.at).routed;
      break;
    case obs::EventKind::kRequestComplete: {
      Window& w = window_at(e.at);
      ++w.completed;
      w.latency.add(e.value);
      break;
    }
    case obs::EventKind::kRequestShed:
      ++shed_;
      break;
    case obs::EventKind::kNodeDrain:
      if (e.arg != 0) {
        open_drains_.push_back({e.core, e.at});
        ++drain_episodes_;
      } else {
        for (std::size_t i = 0; i < open_drains_.size(); ++i) {
          if (open_drains_[i].node == e.core) {
            drain_total_s_ += sim::to_sec(e.at - open_drains_[i].began);
            open_drains_.erase(open_drains_.begin() +
                               static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      break;
    default:
      break;
  }
}

void RecoveryTracker::mark_disturbance(sim::SimTime at) {
  marks_.push_back(at);
}

RecoveryReport RecoveryTracker::finalize(sim::SimTime end) const {
  RecoveryReport rep;
  rep.requests_shed = shed_;
  rep.drain_episodes = drain_episodes_;
  rep.marks = marks_.size();
  rep.drain_total_s = drain_total_s_;
  for (const DrainEpisode& d : open_drains_) {
    rep.drain_total_s += sim::to_sec(std::max<sim::SimTime>(0, end - d.began));
  }

  // Peak backlog: cumulative routed-minus-completed at each window end.
  // Completions land in later windows than their routings, so the running
  // difference is the end-of-window in-flight estimate.
  std::int64_t inflight = 0;
  for (const Window& w : windows_) {
    inflight += static_cast<std::int64_t>(w.routed) -
                static_cast<std::int64_t>(w.completed);
    rep.peak_backlog = std::max(
        rep.peak_backlog,
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, inflight)));
  }

  // Baseline p99: the pre-disturbance windows; with no marks (or nothing
  // completed before the first one) fall back to the whole run. The
  // threshold sits above the pre-disturbance per-window ENVELOPE, not the
  // merged p99: steady-state per-window p99 wobbles (a governor trip
  // coinciding with an arrival burst), and recovery means returning to that
  // normal band, not to a quieter-than-normal one.
  const sim::SimTime first_mark =
      marks_.empty() ? sim::kTimeInfinity
                     : *std::min_element(marks_.begin(), marks_.end());
  analysis::PercentileHistogram base;
  double envelope = 0.0;
  const auto fold_baseline = [&](const Window& w) {
    base.merge(w.latency);
    if (w.latency.count() > 0) {
      envelope = std::max(envelope, w.latency.percentile(99.0));
    }
  };
  const std::size_t settle_w =
      static_cast<std::size_t>((settle_ + window_len_ - 1) / window_len_);
  for (std::size_t i = settle_w; i < windows_.size(); ++i) {
    if (static_cast<sim::SimTime>(i) * window_len_ >= first_mark) break;
    fold_baseline(windows_[i]);
  }
  if (base.count() == 0) {
    base = analysis::PercentileHistogram{};
    envelope = 0.0;
    for (const Window& w : windows_) fold_baseline(w);
  }
  rep.baseline_p99_s = base.count() > 0 ? base.percentile(99.0) : 0.0;
  rep.threshold_p99_s = std::max(1.5 * envelope, rep.baseline_p99_s + 0.02);

  if (marks_.empty()) return rep;

  // A window fails while its p99 sits above the threshold; empty windows
  // are calm (no completions carry no evidence of elevated latency). A
  // disturbance's latency damage lands at COMPLETION time — often windows
  // after the event itself — so recovery is measured to the END of the last
  // failing window, not to the first passing streak (which a laggy backlog
  // would let through right at the mark).
  const auto fails = [&](std::size_t w) {
    const auto& h = windows_[w].latency;
    return h.count() > 0 && h.percentile(99.0) > rep.threshold_p99_s;
  };
  std::ptrdiff_t last_fail = -1;
  const std::size_t first_mark_w = std::max(
      settle_w,
      first_mark <= 0 ? 0 : static_cast<std::size_t>(first_mark / window_len_));
  for (std::size_t w = first_mark_w; w < windows_.size(); ++w) {
    if (fails(w)) last_fail = static_cast<std::ptrdiff_t>(w);
  }
  if (last_fail >= 0) {
    // "Recovered" needs evidence: three full windows of calm inside the run
    // after the last failure, or the final failing window fakes a recovery
    // simply by running out of data.
    const sim::SimTime calm_until =
        static_cast<sim::SimTime>(last_fail + 4) * window_len_;
    if (calm_until > end) {
      rep.recovery_p99_s = -1.0;
      return rep;
    }
  }
  for (const sim::SimTime mark : marks_) {
    const sim::SimTime recovered_at =
        static_cast<sim::SimTime>(last_fail + 1) * window_len_;
    const double rec =
        last_fail < 0 ? 0.0 : std::max(0.0, sim::to_sec(recovered_at - mark));
    rep.recovery_p99_s = std::max(rep.recovery_p99_s, rec);
  }
  return rep;
}

}  // namespace dimetrodon::scenario
