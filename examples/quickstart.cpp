// Quickstart: build the simulated server, run the worst-case thermal load
// (cpuburn on every core) unconstrained, then under a Dimetrodon policy, and
// print the temperature/throughput trade-off — the paper's headline
// measurement in ~40 lines of API use.
#include <cstdio>

#include "harness/experiment.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

int main() {
  sched::MachineConfig config;  // the paper's 1U Xeon E5520 server
  harness::ExperimentRunner runner{config, harness::MeasurementConfig{}};

  const auto cpuburn = [] {
    return std::make_unique<workload::CpuBurnFleet>(4);  // one per core
  };

  std::printf("Running cpuburn unconstrained (race-to-idle)...\n");
  const auto baseline = runner.measure(cpuburn, harness::actuation::none());
  std::printf("  idle temp %.1f C | loaded temp %.1f C (exact %.2f C)\n",
              baseline.idle_sensor_temp_c, baseline.avg_sensor_temp_c,
              baseline.avg_exact_temp_c);
  std::printf("  throughput %.3f work-s/s | package power %.1f W\n\n",
              baseline.throughput, baseline.avg_power_w);

  const double p = 0.5;
  const auto quantum = sim::from_ms(10);
  std::printf("Running cpuburn under Dimetrodon (p=%.2f, L=%.0f ms)...\n", p,
              sim::to_ms(quantum));
  const auto run =
      runner.measure(cpuburn, harness::actuation::dimetrodon(p, quantum));
  std::printf("  loaded temp %.1f C (exact %.2f C) | throughput %.3f | "
              "power %.1f W | injected idle %.1f%%\n",
              run.avg_sensor_temp_c, run.avg_exact_temp_c, run.throughput,
              run.avg_power_w, 100.0 * run.injected_idle_fraction);

  const auto t = harness::compute_tradeoff(baseline, run);
  std::printf("\nTrade-off: temperature reduction over idle %.1f%% (exact "
              "%.1f%%) for a %.1f%% throughput reduction -> efficiency "
              "%.2f:1\n",
              100.0 * t.temp_reduction, 100.0 * t.temp_reduction_exact,
              100.0 * t.throughput_reduction, t.efficiency);
  return 0;
}
