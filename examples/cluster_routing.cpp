// Walkthrough of the cluster layer (src/cluster): a small heterogeneous
// fleet of full machine simulations behind a thermal-aware load balancer.
//
// Three nodes with progressively worse cooling serve one open-loop Poisson
// request stream. The example runs the same fleet under round-robin and
// coolest-node routing and prints where the requests went, each node's
// temperature, and the fleet's end-to-end latency percentiles — the
// cluster-level counterpart of the per-machine experiments: preventive
// thermal management by *placement* instead of idle injection.
#include <cstdio>

#include "cluster/fleet_spec.hpp"

using namespace dimetrodon;

namespace {

void run_policy(cluster::PolicyKind kind) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  // A good, a mediocre, and a bad rack position (fans 1.00/0.775/0.55 via
  // the cooling gradient); the operator compensates for the bad one with
  // idle injection (p=0.4), taxing its capacity.
  const double fans[] = {1.0, 0.775, 0.55};
  const double inject[] = {0.0, 0.0, 0.4};
  auto spec = cluster::FleetSpec::racks(1)
                  .nodes_per_rack(3)
                  .with_machine(machine)
                  .with_cooling(1.0, 0.55)
                  .with_load(1500.0)
                  .with_telemetry(sim::from_ms(10))
                  .with_policy(kind)
                  .override_position(2, {.injection_probability = 0.4});

  auto fleet = spec.make_cluster();
  const cluster::ClusterResult r = fleet->run(sim::from_sec(15));

  std::printf("\n--- %s ---\n", r.policy.c_str());
  std::printf("  %-6s %-6s %-6s %10s %10s %8s\n", "node", "fan", "p_inj",
              "routed", "peak C", "mean C");
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    std::printf("  %-6zu %-6.2f %-6.2f %10llu %10.1f %8.1f\n", i, fans[i],
                inject[i],
                static_cast<unsigned long long>(r.nodes[i].routed),
                r.nodes[i].peak_sensor_c, r.nodes[i].mean_sensor_c);
  }
  std::printf("  fleet: %.0f req/s, p50 %.3f s, p95 %.3f s, p99 %.3f s, "
              "good %.1f%%, peak %.1f C (exact %.2f C)\n",
              r.throughput_rps, r.qos.p50_latency_s, r.qos.p95_latency_s,
              r.qos.p99_latency_s, 100 * r.qos.good_fraction(),
              r.fleet_peak_sensor_c, r.fleet_peak_exact_c);
}

}  // namespace

int main() {
  std::printf("cluster routing: 3 nodes, 1500 req/s open-loop Poisson "
              "arrivals, 15 s\n");
  run_policy(cluster::PolicyKind::kRoundRobin);
  run_policy(cluster::PolicyKind::kCoolestNode);
  run_policy(cluster::PolicyKind::kInjectionAware);
  std::printf("\nRound-robin loads all nodes equally, so the badly cooled, "
              "heavily injected node 2 sets the fleet's peak temperature "
              "and tail latency. Coolest-node reads the same quantized "
              "telemetry the paper's controller uses and equalizes "
              "temperatures by steering work toward the cold end of the "
              "rack; injection-aware scores each node's queue against the "
              "capacity Dimetrodon leaves it, shaving the peak without "
              "coolest-node's tail-latency cost.\n");
  return 0;
}
