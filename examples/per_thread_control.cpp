// Per-thread thermal control (the paper's §3.6 demonstration): a
// latency-loving periodic "cool" process shares the machine with four
// heat-generating calculix instances. A global policy punishes everyone; a
// per-thread policy throttles only the hot threads while the cool process
// runs at full speed — and the machine still cools.
#include <cstdio>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cool_process.hpp"
#include "workload/spec.hpp"

using namespace dimetrodon;

namespace {

struct Result {
  double avg_temp;
  double cool_stretch;  // wall time of the cool process's bursts / nominal
};

Result run(bool enable_policy, bool per_thread) {
  sched::MachineConfig config;
  config.enable_meter = false;
  sched::Machine machine(config);
  core::DimetrodonController dimetrodon(machine);

  workload::SpecFleet hot(*workload::find_spec_profile("calculix"), 4);
  workload::CoolProcess cool;
  hot.deploy(machine);
  cool.deploy(machine);

  if (enable_policy) {
    if (per_thread) {
      // The "system call" interface: target only the hot threads.
      for (const auto tid : hot.threads()) {
        dimetrodon.sys_set_thread(tid, 0.75, sim::from_ms(50));
      }
    } else {
      dimetrodon.sys_set_global(0.75, sim::from_ms(50));
    }
  }

  // Accelerated thermal settling, then measure a few cool-process periods.
  for (int i = 0; i < 4; ++i) {
    machine.mark_power_window();
    machine.run_for(sim::from_sec(8));
    machine.jump_to_average_power_steady_state();
  }
  double temp_sum = 0.0;
  const int seconds = 150;
  for (int s = 0; s < seconds; ++s) {
    machine.run_for(sim::kSecond);
    temp_sum += machine.mean_sensor_temp();
  }
  return Result{temp_sum / seconds, cool.mean_burst_stretch()};
}

}  // namespace

int main() {
  const Result off = run(false, false);
  const Result global = run(true, false);
  const Result per_thread = run(true, true);

  std::printf("scenario: 4x calculix (hot) + periodic cool process, "
              "p=0.75 L=50ms\n\n");
  std::printf("%-22s %12s %22s\n", "policy", "avg temp", "cool burst stretch");
  std::printf("%-22s %9.1f C %19.2fx\n", "none (race-to-idle)", off.avg_temp,
              off.cool_stretch);
  std::printf("%-22s %9.1f C %19.2fx\n", "global injection", global.avg_temp,
              global.cool_stretch);
  std::printf("%-22s %9.1f C %19.2fx\n", "per-thread injection",
              per_thread.avg_temp, per_thread.cool_stretch);
  std::printf("\nBoth policies cool the machine by ~%.0f C, but only the "
              "per-thread policy leaves the cool process's bursts "
              "(nearly) unstretched.\n",
              off.avg_temp - global.avg_temp);
  return 0;
}
