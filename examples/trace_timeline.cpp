// Figure 1 as a browsable timeline: race-to-idle versus Dimetrodon on the
// same CPU-bound fleet, exported through the structured tracing subsystem
// (src/obs) as a Chrome trace-event JSON. Load the output at
// https://ui.perfetto.dev (or chrome://tracing) to see, per core, the running
// thread, C-state residencies, injected-idle quanta, die temperature, and
// package power — the paper's Figure 1 power levels become visible as the
// number of simultaneously idle cores.
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/controller.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

struct TracedRun {
  std::shared_ptr<obs::RingBufferSink> sink;
  obs::TraceMeta meta;
  obs::CounterTotals counters;
};

TracedRun run_traced(const char* label, int pid, double p,
                     sim::SimTime quantum, sim::SimTime window) {
  TracedRun out;
  out.sink = std::make_shared<obs::RingBufferSink>();

  sched::MachineConfig cfg;
  cfg.enable_meter = true;
  cfg.meter.sample_noise_w = 0.0;  // publication trace: noise hidden
  cfg.meter.gain_error_stddev = 0.0;
  cfg.trace_sink_factory = [sink = out.sink]() { return sink; };
  sched::Machine machine(cfg);

  std::unique_ptr<core::DimetrodonController> ctl;
  if (p > 0.0) {
    ctl = std::make_unique<core::DimetrodonController>(machine);
    ctl->sys_set_global(p, quantum);
  }
  workload::CpuBurnFleet fleet(4, 1.4);
  fleet.deploy(machine);
  machine.run_until_condition([&] { return fleet.all_done(machine); }, window);
  const double completion = sim::to_sec(machine.now());
  machine.run_until(window);

  out.meta.process_name = label;
  out.meta.pid = pid;
  out.meta.num_cores = machine.num_cores();
  out.meta.thread_names.reserve(machine.thread_count());
  for (std::size_t i = 0; i < machine.thread_count(); ++i) {
    out.meta.thread_names.push_back(
        machine.thread(static_cast<sched::ThreadId>(i)).name());
  }
  out.counters = machine.counters().totals();

  std::printf("%-14s completion %.2f s | %llu events traced "
              "(%llu dropped) | %llu injections\n",
              label, completion,
              static_cast<unsigned long long>(out.sink->total_events()),
              static_cast<unsigned long long>(out.sink->dropped()),
              static_cast<unsigned long long>(out.counters.injections));
  return out;
}

}  // namespace

int main() {
  std::printf("=== trace_timeline: Fig. 1 as a Perfetto-loadable trace ===\n");
  const auto window = sim::from_sec(4.0);
  const TracedRun rti = run_traced("race-to-idle", 1, 0.0, 0, window);
  const TracedRun dim =
      run_traced("dimetrodon[p=0.5,L=100ms]", 2, 0.5, sim::from_ms(100),
                 window);

  obs::ChromeTraceExporter exporter;
  exporter.add_machine(rti.meta, rti.sink->snapshot());
  exporter.add_machine(dim.meta, dim.sink->snapshot());
  const std::string json = exporter.to_string();

  // The exported document must round-trip through a strict JSON parser, and
  // the injected-idle spans it draws must sum to exactly the counter
  // registry's injected-idle nanoseconds — the subsystem's acceptance gates.
  const auto parsed = obs::json::validate(json);
  if (!parsed.ok) {
    std::fprintf(stderr, "exported trace is not valid JSON at byte %zu: %s\n",
                 parsed.error_pos, parsed.error.c_str());
    return 1;
  }
  const auto spans = obs::injected_idle_spans(dim.sink->snapshot());
  const std::uint64_t span_ns = obs::summed_injection_ns(spans);
  if (span_ns != dim.counters.injected_idle_ns) {
    std::fprintf(stderr,
                 "span sum %llu ns != counter registry %llu ns\n",
                 static_cast<unsigned long long>(span_ns),
                 static_cast<unsigned long long>(
                     dim.counters.injected_idle_ns));
    return 1;
  }

  const char* path = "trace_timeline.json";
  std::ofstream file(path, std::ios::trunc);
  file << json;
  file.close();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }

  std::printf("trace OK: %zu JSON values | %zu injected-idle spans summing "
              "to %.3f s (== registry, exact)\n",
              parsed.values, spans.size(),
              static_cast<double>(span_ns) / 1e9);
  std::printf("wrote %s — open it at https://ui.perfetto.dev\n", path);
  return 0;
}
