// Composition of the extensions: a "datacenter node" that must stay under a
// temperature target during a load spike, using the closed-loop adaptive
// controller; then the same mechanism re-targeted at a power budget
// (Gandhi-style power capping — the idle-injection lineage that later landed
// in Linux). Demonstrates that one scheduler-level mechanism serves both
// masters, as §4 of the paper argues.
#include <cstdio>

#include "core/adaptive.hpp"
#include "core/power_cap.hpp"
#include "sched/machine.hpp"
#include "workload/spec.hpp"

using namespace dimetrodon;

namespace {

void settle(sched::Machine& machine, int iterations = 4) {
  for (int i = 0; i < iterations; ++i) {
    machine.mark_power_window();
    machine.run_for(sim::from_sec(8));
    machine.jump_to_average_power_steady_state();
  }
}

}  // namespace

int main() {
  // --- Part 1: hold 52 C through a load spike -----------------------------
  {
    sched::MachineConfig config;
    config.enable_meter = false;
    sched::Machine machine(config);
    core::DimetrodonController dimetrodon(machine);
    core::AdaptiveController::Config acfg;
    acfg.target_temp_c = 52.0;
    core::AdaptiveController adaptive(machine, dimetrodon, acfg);

    std::printf("== adaptive temperature cap: target %.0f C ==\n",
                acfg.target_temp_c);
    // Phase A: moderate load (2 instances of gcc).
    workload::SpecFleet light(*workload::find_spec_profile("gcc"), 2);
    light.deploy(machine);
    settle(machine);
    std::printf("moderate load : %.1f C at p=%.2f\n",
                machine.mean_sensor_temp(), adaptive.current_probability());

    // Phase B: spike — two calculix instances join.
    workload::SpecFleet spike(*workload::find_spec_profile("calculix"), 2);
    spike.deploy(machine);
    settle(machine);
    std::printf("after spike   : %.1f C at p=%.2f "
                "(controller absorbed the spike)\n\n",
                machine.mean_sensor_temp(), adaptive.current_probability());
  }

  // --- Part 2: the same mechanism as a power cap --------------------------
  {
    sched::MachineConfig config;
    config.enable_meter = false;
    sched::Machine machine(config);
    core::DimetrodonController dimetrodon(machine);
    core::PowerCapController::Config pcfg;
    pcfg.power_cap_w = 48.0;
    core::PowerCapController capper(machine, dimetrodon, pcfg);

    std::printf("== power capping via forced idleness: budget %.0f W ==\n",
                pcfg.power_cap_w);
    workload::SpecFleet fleet(*workload::find_spec_profile("namd"), 4);
    fleet.deploy(machine);
    settle(machine);
    const double e0 = machine.energy().total_joules();
    const double w0 = fleet.progress(machine);
    machine.run_for(sim::from_sec(20));
    std::printf("held %.1f W (budget %.0f W) at p=%.2f, throughput %.2f "
                "work-s/s, temp %.1f C\n",
                (machine.energy().total_joules() - e0) / 20.0,
                pcfg.power_cap_w, capper.current_probability(),
                (fleet.progress(machine) - w0) / 20.0,
                machine.mean_sensor_temp());
    std::printf("(the short idle quanta give the 'thermally-beneficial "
                "side-effects' the paper predicts for power capping)\n");
  }
  return 0;
}
