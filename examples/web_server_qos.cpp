// Thermal management of a latency-sensitive service (the paper's §3.7): a
// SPECWeb-style closed-loop web workload under increasing injection, showing
// the temperature / QoS trade-off and the deferral dynamics (mild injection
// just redistributes idle gaps; cooling arrives once the closed loop slows).
#include <cstdio>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/web.hpp"

using namespace dimetrodon;

int main() {
  std::printf("web serving under Dimetrodon (440 connections, QoS: good <= "
              "3 s, tolerable <= 5 s)\n\n");
  std::printf("%-6s %-8s %10s %10s %12s %12s %10s\n", "p", "L(ms)", "temp(C)",
              "req/s", "good(%)", "tolerable(%)", "mean lat");

  for (const auto& [p, l_ms] : std::vector<std::pair<double, double>>{
           {0.0, 0}, {0.5, 10}, {0.75, 50}, {0.9, 100}, {0.97, 100}}) {
    sched::MachineConfig config;
    config.enable_meter = false;
    sched::Machine machine(config);
    core::DimetrodonController dimetrodon(machine);
    if (p > 0) dimetrodon.sys_set_global(p, sim::from_ms(l_ms));

    workload::WebWorkload web;
    web.deploy(machine);

    for (int i = 0; i < 3; ++i) {
      machine.mark_power_window();
      machine.run_for(sim::from_sec(8));
      machine.jump_to_average_power_steady_state();
    }
    web.mark();
    double temp_sum = 0.0;
    const int seconds = 40;
    for (int s = 0; s < seconds; ++s) {
      machine.run_for(sim::kSecond);
      temp_sum += machine.mean_sensor_temp();
    }
    const auto qos = web.stats_since_mark();
    std::printf("%-6.2f %-8.0f %9.1f %9.1f %11.1f %13.1f %8.3f s\n", p, l_ms,
                temp_sum / seconds,
                static_cast<double>(qos.total) / seconds,
                100.0 * qos.good_fraction(), 100.0 * qos.tolerable_fraction(),
                qos.mean_latency_s);
  }
  std::printf("\nNote the §3.7 dynamics: light injection barely cools (the "
              "deferred requests keep the load constant); meaningful cooling "
              "arrives with latency, first eating the 'good' budget, then "
              "the 'tolerable' one.\n");
  return 0;
}
