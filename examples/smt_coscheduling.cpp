// SMT and idle-quantum co-scheduling: the paper disabled SMT because "in
// order to cause the entire core to enter the C1E low power state we need to
// halt all thread contexts on the core" (§3.2). This example enables the two
// hardware contexts per core and shows why: independent injection strands
// half-idle cores at full leakage, while co-scheduled injection halts whole
// cores and recovers the C1E benefit.
#include <cstdio>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

struct Result {
  double temp;
  double throughput;
};

Result run(bool co_schedule, double p) {
  sched::MachineConfig config;
  config.enable_meter = false;
  config.smt_enabled = true;
  config.smt_co_schedule_injection = co_schedule;
  sched::Machine machine(config);
  core::DimetrodonController dimetrodon(machine);
  if (p > 0) dimetrodon.sys_set_global(p, sim::from_ms(25));

  workload::CpuBurnFleet fleet(8);  // one instance per hardware context
  fleet.deploy(machine);
  for (int i = 0; i < 4; ++i) {
    machine.mark_power_window();
    machine.run_for(sim::from_sec(8));
    machine.jump_to_average_power_steady_state();
  }
  const double w0 = fleet.progress(machine);
  double temp_sum = 0.0;
  const int seconds = 15;
  for (int s = 0; s < seconds; ++s) {
    machine.run_for(sim::kSecond);
    temp_sum += machine.mean_sensor_temp();
  }
  return Result{temp_sum / seconds,
                (fleet.progress(machine) - w0) / seconds};
}

}  // namespace

int main() {
  std::printf("SMT machine: 4 physical cores x 2 contexts, 8 cpuburn "
              "instances\n\n");
  const Result base = run(false, 0.0);
  const Result indep = run(false, 0.5);
  const Result cosched = run(true, 0.5);

  std::printf("%-34s %10s %14s\n", "configuration", "temp", "throughput");
  std::printf("%-34s %8.1f C %11.2f w/s\n", "unconstrained", base.temp,
              base.throughput);
  std::printf("%-34s %8.1f C %11.2f w/s\n",
              "injection, independent contexts", indep.temp,
              indep.throughput);
  std::printf("%-34s %8.1f C %11.2f w/s\n",
              "injection, co-scheduled contexts", cosched.temp,
              cosched.throughput);
  std::printf("\nCo-scheduling idles sibling contexts together, so whole "
              "physical cores reach C1E and leakage drops — the 'additional "
              "care' the paper deferred.\n");
  return 0;
}
