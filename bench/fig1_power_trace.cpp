// Figure 1: processor power consumption over time, race-to-idle versus
// Dimetrodon, for a multi-threaded CPU-bound process. The paper's trace shows
// unconstrained execution holding peak power then dropping to idle, while
// Dimetrodon runs longer at lower average power with distinct levels
// corresponding to the number of cores idling at once.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

struct TraceResult {
  std::vector<power::PowerSample> samples;
  double completion_s = 0.0;
};

TraceResult run_trace(double p, sim::SimTime quantum, sim::SimTime window) {
  sched::MachineConfig cfg;
  cfg.enable_meter = true;
  cfg.meter.sample_noise_w = 0.0;  // publication trace: noise hidden
  cfg.meter.gain_error_stddev = 0.0;
  sched::Machine machine(cfg);
  std::unique_ptr<core::DimetrodonController> ctl;
  if (p > 0.0) {
    ctl = std::make_unique<core::DimetrodonController>(machine);
    ctl->sys_set_global(p, quantum);
  }
  // The paper injected idle cycles into "a multi-threaded CPU-bound process"
  // on four cores.
  workload::CpuBurnFleet fleet(4, 1.4);
  fleet.deploy(machine);
  machine.run_until_condition([&] { return fleet.all_done(machine); }, window);
  TraceResult r;
  r.completion_s = sim::to_sec(machine.now());
  machine.run_until(window);
  r.samples = machine.meter()->samples();
  return r;
}

double mean_power_while(const TraceResult& t, double t0, double t1) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : t.samples) {
    const double at = sim::to_sec(s.at);
    if (at >= t0 && at < t1) {
      sum += s.watts;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("=== Figure 1: race-to-idle vs Dimetrodon power trace ===\n");
  const auto window = sim::from_sec(4.0);
  const TraceResult rti = run_trace(0.0, 0, window);
  const TraceResult dim = run_trace(0.5, sim::from_ms(100), window);

  trace::CsvWriter csv(bench::csv_path("fig1_power_trace.csv"),
                       {"time_s", "race_to_idle_w", "dimetrodon_w"});
  // Downsample both traces onto a 20 ms grid for plotting.
  const double step = 0.02;
  std::size_t ir = 0;
  std::size_t id = 0;
  for (double t = 0.0; t < 4.0; t += step) {
    auto advance = [&](const TraceResult& tr, std::size_t& i) {
      while (i + 1 < tr.samples.size() &&
             sim::to_sec(tr.samples[i + 1].at) <= t) {
        ++i;
      }
      return tr.samples.empty() ? 0.0 : tr.samples[i].watts;
    };
    csv.write_row(std::vector<double>{t, advance(rti, ir), advance(dim, id)});
  }

  std::printf("completion: race-to-idle %.2f s | dimetrodon %.2f s "
              "(p=0.5, L=100 ms -> ~2x, per the model)\n",
              rti.completion_s, dim.completion_s);
  std::printf("\n%-22s %14s %14s\n", "phase", "race-to-idle", "dimetrodon");
  std::printf("%-22s %12.1f W %12.1f W\n", "during rti execution",
              mean_power_while(rti, 0.2, rti.completion_s - 0.1),
              mean_power_while(dim, 0.2, rti.completion_s - 0.1));
  std::printf("%-22s %12.1f W %12.1f W\n", "during dim execution",
              mean_power_while(rti, 0.2, dim.completion_s - 0.1),
              mean_power_while(dim, 0.2, dim.completion_s - 0.1));
  std::printf("%-22s %12.1f W %12.1f W\n", "after both complete",
              mean_power_while(rti, dim.completion_s + 0.2, 4.0),
              mean_power_while(dim, dim.completion_s + 0.2, 4.0));

  // The paper's observation: four distinct power levels corresponding to the
  // number of cores idling. Count samples near each k-cores-idle level.
  std::printf("\npower-level occupancy during Dimetrodon execution "
              "(0..4 cores idle):\n");
  const double peak = mean_power_while(rti, 0.2, rti.completion_s - 0.1);
  const double idle = mean_power_while(rti, 3.2, 4.0);
  const double per_core = (peak - idle) / 4.0;
  std::size_t hist[5] = {0, 0, 0, 0, 0};
  std::size_t total = 0;
  for (const auto& s : dim.samples) {
    const double at = sim::to_sec(s.at);
    if (at < 0.2 || at > dim.completion_s - 0.1) continue;
    const double cores_idle = (peak - s.watts) / per_core;
    const int k = std::clamp(static_cast<int>(cores_idle + 0.5), 0, 4);
    ++hist[k];
    ++total;
  }
  for (int k = 0; k <= 4; ++k) {
    std::printf("  %d cores idle: %5.1f%% of samples\n", k,
                total == 0 ? 0.0 : 100.0 * hist[k] / total);
  }
  std::printf("\nCSV: %s\n", bench::csv_path("fig1_power_trace.csv").c_str());
  return 0;
}
