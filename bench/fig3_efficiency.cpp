// Figure 3: efficiency (temperature reduction : throughput reduction) of
// Dimetrodon on cpuburn as a function of the idle quantum length L, for
// p in {.1, .25, .5, .75}. The paper's findings to reproduce: efficiency
// falls with L (diminishing marginal benefit of longer quanta), shorter
// quanta dominate the pareto boundary (100p/L > 1 at boundary configs), and
// higher-p curves are smoother because more injections average the noise.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

int main() {
  std::printf("=== Figure 3: efficiency vs idle quantum length ===\n");
  const std::vector<double> ps = {0.1, 0.25, 0.5, 0.75};
  const std::vector<double> ls_ms = {1, 2, 5, 10, 25, 50, 75, 100};

  sched::MachineConfig cfg;
  auto engine = bench::make_engine(cfg, "fig3_efficiency");
  std::vector<runner::RunSpec> specs;
  specs.push_back(bench::measure_spec(cfg, bench::cpuburn_key(4),
                                      bench::cpuburn_fleet(4),
                                      runner::ActuationSpec::none()));
  for (const double l : ls_ms) {
    for (const double p : ps) {
      specs.push_back(bench::measure_spec(
          cfg, bench::cpuburn_key(4), bench::cpuburn_fleet(4),
          runner::ActuationSpec::global(p, sim::from_ms(l))));
    }
  }
  const auto records = bench::run_all_or_die(engine, specs);
  const auto& baseline = records.at(0).result;
  std::printf("baseline: rise over idle %.1f C (sensor), throughput %.3f\n",
              baseline.avg_sensor_temp_c - baseline.idle_sensor_temp_c,
              baseline.throughput);

  trace::CsvWriter csv(bench::csv_path("fig3_efficiency.csv"),
                       {"p", "L_ms", "temp_reduction", "temp_reduction_exact",
                        "throughput_reduction", "efficiency",
                        "efficiency_exact"});
  trace::Table table({"L(ms)", "p=.1", "p=.25", "p=.5", "p=.75"});
  std::vector<bench::SweepPoint> all_points;
  std::size_t next_record = 1;
  for (const double l : ls_ms) {
    std::vector<std::string> row{trace::fmt("%.0f", l)};
    for (const double p : ps) {
      const auto& run = records.at(next_record++).result;
      const auto t = harness::compute_tradeoff(baseline, run);
      const double eff_exact =
          t.throughput_reduction <= 1e-9
              ? 0.0
              : t.temp_reduction_exact / t.throughput_reduction;
      row.push_back(trace::fmt("%5.2f", std::min(t.efficiency, 99.0)));
      csv.write_row(std::vector<double>{p, l, t.temp_reduction,
                                        t.temp_reduction_exact,
                                        t.throughput_reduction, t.efficiency,
                                        eff_exact});
      all_points.push_back(
          bench::SweepPoint{trace::fmt("p=%.2f,L=%.0fms", p, l), t, run});
    }
    table.add_row(row);
  }
  std::printf("\nefficiency (quantized-sensor pipeline, as the paper "
              "measured):\n");
  table.print(std::cout);

  // Pareto boundary check: the paper notes 100p/L > 1 holds for boundary
  // configurations (short quanta relative to probability).
  std::printf("\npareto boundary configurations (temp reduction vs retained "
              "throughput):\n");
  int boundary_rule_holds = 0;
  int boundary_total = 0;
  const auto frontier_labels = bench::pareto_labels(all_points);
  for (const auto& label : frontier_labels) {
    double p = 0.0;
    double l = 0.0;
    std::sscanf(label.c_str(), "p=%lf,L=%lfms", &p, &l);
    const bool rule = 100.0 * p / l > 1.0;
    boundary_rule_holds += rule ? 1 : 0;
    ++boundary_total;
    std::printf("  %-18s 100p/L = %5.2f %s\n", label.c_str(), 100.0 * p / l,
                rule ? "(>1)" : "(<=1)");
  }
  std::printf("rule 100p/L>1 holds for %d/%d boundary configs (paper: holds "
              "on its boundary)\n",
              boundary_rule_holds, boundary_total);
  std::printf("\nCSV: %s\n", bench::csv_path("fig3_efficiency.csv").c_str());
  return 0;
}
