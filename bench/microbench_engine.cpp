// Engine micro-benchmarks (google-benchmark): the hot paths that bound how
// fast the reproduction sweeps run — event queue churn, implicit-Euler RC
// stepping, scheduler dispatch, and whole-machine simulated seconds.
//
// Besides the google-benchmark suite, main() always runs the acceptance
// measurement for the closed-form thermal fast-forward — the 300 s cpuburn×4
// machine-advance workload under the pre-fast-forward reference stepper and
// under the lazy clock — and writes the machine-readable result to
// BENCH_engine.json (override the path with DIMETRODON_BENCH_JSON) so CI can
// track the perf trajectory as an artifact.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "harness/experiment.hpp"
#include "sched/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/linalg.hpp"
#include "thermal/rc_network.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  sim::EventQueue q;
  sim::SimTime t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    q.schedule(t + 100, [&sink](sim::SimTime at) {
      sink += static_cast<std::uint64_t>(at);
    });
    t = q.pop_and_run();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void BM_EventQueueDeepHeap(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    for (int i = 0; i < depth; ++i) {
      q.schedule((i * 7919) % 104729, [](sim::SimTime) {});
    }
    state.ResumeTiming();
    while (!q.empty()) q.pop_and_run();
  }
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(42);
  double sink = 0.0;
  for (auto _ : state) sink += rng.uniform();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniform);

// The matvec kernels behind every lifted fast-forward application. Arg is
// the matrix size; the unrolled kernel must beat (or at worst match) the
// naive reference while staying bitwise-identical — the parity half lives in
// tests/thermal/linalg_test.cpp, the speed half is tracked here.
thermal::DenseMatrix filled_matrix(std::size_t n) {
  thermal::DenseMatrix m(n);
  unsigned seed = 1234u + static_cast<unsigned>(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      seed = seed * 1664525u + 1013904223u;
      m.at(r, c) = static_cast<double>(seed % 100000) / 9973.0 - 5.0;
    }
  }
  return m;
}

std::vector<double> filled_vector(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.37 * static_cast<double>(i) - 3.0;
  }
  return x;
}

void BM_DenseMatvec(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const thermal::DenseMatrix m = filled_matrix(n);
  const std::vector<double> x = filled_vector(n);
  std::vector<double> y;
  for (auto _ : state) thermal::matvec(m, x, y);
  benchmark::DoNotOptimize(y.data());
  state.SetLabel("unrolled");
}
BENCHMARK(BM_DenseMatvec)->Arg(8)->Arg(32)->Arg(128);

void BM_DenseMatvecReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const thermal::DenseMatrix m = filled_matrix(n);
  const std::vector<double> x = filled_vector(n);
  std::vector<double> y;
  for (auto _ : state) thermal::matvec_reference(m, x, y);
  benchmark::DoNotOptimize(y.data());
  state.SetLabel("reference");
}
BENCHMARK(BM_DenseMatvecReference)->Arg(8)->Arg(32)->Arg(128);

// CSR kernels on a block-diagonal fill pattern (the cluster rack topology):
// ~25% fill so the sparse walk does real index chasing.
thermal::SparseMatrix block_sparse(std::size_t blocks, std::size_t per_block) {
  const std::size_t n = blocks * per_block;
  thermal::DenseMatrix m(n);
  unsigned seed = 77u;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < per_block; ++i) {
      for (std::size_t j = 0; j < per_block; ++j) {
        seed = seed * 1664525u + 1013904223u;
        m.at(b * per_block + i, b * per_block + j) =
            static_cast<double>(seed % 100000) / 9973.0 - 5.0;
      }
    }
  }
  return thermal::SparseMatrix::from_dense(m);
}

void BM_CsrMatvec(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const thermal::SparseMatrix s = block_sparse(blocks, 4);
  const std::vector<double> x = filled_vector(blocks * 4);
  std::vector<double> y;
  for (auto _ : state) thermal::matvec(s, x, y);
  benchmark::DoNotOptimize(y.data());
  state.SetLabel("unrolled");
}
BENCHMARK(BM_CsrMatvec)->Arg(8)->Arg(64);

void BM_CsrMatvecReference(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const thermal::SparseMatrix s = block_sparse(blocks, 4);
  const std::vector<double> x = filled_vector(blocks * 4);
  std::vector<double> y;
  for (auto _ : state) thermal::matvec_reference(s, x, y);
  benchmark::DoNotOptimize(y.data());
  state.SetLabel("reference");
}
BENCHMARK(BM_CsrMatvecReference)->Arg(8)->Arg(64);

void BM_RcNetworkStep(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  net.set_power(nodes.package, 18.0);
  for (auto _ : state) net.step(0.00025);
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkStep);

// The closed-form propagator: one simulated second of 250 µs substeps in
// O(log k) matvecs — the fast path under every machine advance.
void BM_RcNetworkFastForward(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  net.set_power(nodes.package, 18.0);
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) net.advance(0.00025, k);
  state.SetLabel(std::to_string(k) + " substeps/advance");
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkFastForward)->Arg(20)->Arg(4000);

// Block-diagonal topology in the style of the cluster layer: many free
// "islands" (rack-air chains) coupled only through one fixed CRAC node, so
// the free-free propagator is block diagonal and the CSR path skips the
// cross-island zero blocks entirely.
std::vector<thermal::NodeId> build_island_network(thermal::RcNetwork& net,
                                                  std::size_t islands,
                                                  std::size_t per_island) {
  const thermal::NodeId crac = net.add_fixed_node("crac", 18.0);
  std::vector<thermal::NodeId> heads;
  heads.reserve(islands);
  for (std::size_t i = 0; i < islands; ++i) {
    thermal::NodeId prev =
        net.add_node("island" + std::to_string(i) + ".0", 50.0, 25.0);
    net.connect_r(prev, crac, 0.4);
    heads.push_back(prev);
    for (std::size_t j = 1; j < per_island; ++j) {
      const thermal::NodeId n = net.add_node(
          "island" + std::to_string(i) + "." + std::to_string(j), 30.0, 25.0);
      net.connect_r(prev, n, 0.15);
      prev = n;
    }
  }
  return heads;
}

// The sparse-vs-dense propagator on the block-diagonal topology; Arg(0)
// forces the dense reference, Arg(1) the CSR fast path.
void BM_RcNetworkBlockDiagAdvance(benchmark::State& state) {
  thermal::RcNetwork net;
  const auto heads = build_island_network(net, 64, 4);
  for (const auto n : heads) net.set_power(n, 35.0);
  net.set_sparse_enabled(state.range(0) != 0);
  for (auto _ : state) net.advance(0.00025, 4000);
  state.SetLabel(state.range(0) != 0 ? "csr" : "dense");
  benchmark::DoNotOptimize(net.temperature(heads[0]));
}
BENCHMARK(BM_RcNetworkBlockDiagAdvance)->Arg(0)->Arg(1);

void BM_RcNetworkSteadyState(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  for (auto _ : state) net.solve_steady_state();
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkSteadyState);

void BM_MachineSimulatedSecond(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = state.range(0) != 0;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(cfg.enable_meter ? "meter on" : "meter off");
}
BENCHMARK(BM_MachineSimulatedSecond)->Arg(0)->Arg(1);

// Pre-fast-forward baseline: the 250 µs self-rescheduling substep event and
// one sequential LU solve per substep.
void BM_MachineSecondReferenceStepper(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.thermal_reference_stepper = true;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
}
BENCHMARK(BM_MachineSecondReferenceStepper);

void BM_MachineSecondUnderInjection(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  // Worst case for the event engine: 1 ms quanta at high probability.
  ctl.sys_set_global(0.75, sim::from_ms(state.range(0)));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
}
BENCHMARK(BM_MachineSecondUnderInjection)->Arg(1)->Arg(10)->Arg(100);

// Tracing overhead on the scheduler hot path. Arg 0: no sink attached (the
// probes must collapse to counter increments plus one predicted branch —
// the subsystem's <2% overhead budget). Arg 1: ring-buffer sink attached,
// showing the full cost of event capture. High-frequency injection maximizes
// probe density (sched switches + C-state transitions + injection events).
void BM_MachineSecondTracing(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  auto sink = std::make_shared<obs::RingBufferSink>();
  if (state.range(0) != 0) {
    cfg.trace_sink_factory = [sink]() { return sink; };
  }
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  ctl.sys_set_global(0.75, sim::from_ms(1));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(state.range(0) != 0 ? "ring-buffer sink" : "no sink");
  state.counters["events"] =
      static_cast<double>(machine.tracer().counters().totals().dispatches);
}
BENCHMARK(BM_MachineSecondTracing)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Acceptance measurement: 300 s cpuburn×4 machine advance, reference stepper
// vs closed-form fast-forward, written as machine-readable JSON.
// ---------------------------------------------------------------------------

struct AdvanceResult {
  double wall_seconds = 0.0;
  double sim_seconds_per_sec = 0.0;
  double ns_per_substep = 0.0;
  std::uint64_t substeps = 0;
  std::uint64_t fast_forward_steps = 0;
  std::uint64_t matvecs = 0;
  std::uint64_t factorizations = 0;
  std::uint64_t events_executed = 0;
};

AdvanceResult measure_machine_advance(bool reference, double sim_seconds) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.thermal_reference_stepper = reference;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  const auto t0 = std::chrono::steady_clock::now();
  machine.run_for(sim::from_sec(sim_seconds));
  const auto t1 = std::chrono::steady_clock::now();

  AdvanceResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sim_seconds_per_sec =
      r.wall_seconds > 0.0 ? sim_seconds / r.wall_seconds : 0.0;
  const obs::CounterTotals t = machine.counters().totals();
  r.substeps = t.thermal_substeps;
  r.fast_forward_steps = t.thermal_fast_forward_steps;
  r.matvecs = t.thermal_matvecs;
  r.factorizations = t.thermal_factorizations;
  r.events_executed = machine.simulator().events_executed();
  r.ns_per_substep =
      r.substeps > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.substeps)
                     : 0.0;
  return r;
}

double measure_event_queue_ops_per_sec() {
  sim::EventQueue q;
  sim::SimTime t = 0;
  std::uint64_t sink = 0;
  constexpr int kOps = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    q.schedule(t + 100, [&sink](sim::SimTime at) {
      sink += static_cast<std::uint64_t>(at);
    });
    t = q.pop_and_run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0.0 ? kOps / wall : 0.0;
}

// ---------------------------------------------------------------------------
// Acceptance cell: sparse propagator on the block-diagonal island topology.
// Dense and CSR paths must produce bit-identical temperatures; the speedup is
// recorded for the perf trajectory.
// ---------------------------------------------------------------------------

struct SparseResult {
  std::size_t nodes = 0;
  double dense_wall = 0.0;
  double sparse_wall = 0.0;
  double speedup = 0.0;
  std::uint64_t sparse_matvecs = 0;
  bool bit_identical = false;
};

SparseResult measure_sparse_advance() {
  constexpr std::size_t kIslands = 64;
  constexpr std::size_t kPerIsland = 4;
  constexpr int kReps = 40;
  const auto run = [&](bool sparse, thermal::RcNetwork& net) {
    const auto heads = build_island_network(net, kIslands, kPerIsland);
    for (const auto n : heads) net.set_power(n, 35.0);
    net.set_sparse_enabled(sparse);
    net.advance(0.00025, 4000);  // warm the operator cache
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) net.advance(0.00025, 4000);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  thermal::RcNetwork dense;
  thermal::RcNetwork csr;
  SparseResult r;
  r.dense_wall = run(false, dense);
  r.sparse_wall = run(true, csr);
  r.speedup = r.sparse_wall > 0.0 ? r.dense_wall / r.sparse_wall : 0.0;
  r.nodes = dense.node_count();
  r.sparse_matvecs = csr.stats().sparse_matvecs;
  r.bit_identical = true;
  for (std::size_t n = 0; n < dense.node_count(); ++n) {
    if (dense.temperature(n) != csr.temperature(n)) r.bit_identical = false;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Acceptance cell: warm-start sweep. Eight injection setpoints sharing one
// 240 s unactuated cpuburn×4 warmup, measured cold (each point re-simulates
// the warmup) and warm (one snapshot build, eight forks). The forked results
// must be bit-identical to the replayed ones, and sharing the prefix must cut
// end-to-end wall time at least in half.
// ---------------------------------------------------------------------------

struct WarmStartResult {
  int points = 0;
  double warmup_sim_seconds = 0.0;
  double cold_wall = 0.0;
  double warm_wall = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

WarmStartResult measure_warm_start() {
  constexpr double kWarmupSeconds = 240.0;
  const std::vector<double> probs = {0.05, 0.15, 0.25, 0.35,
                                     0.45, 0.55, 0.65, 0.75};
  harness::MeasurementConfig mc;
  mc.max_settle_iterations = 1;
  mc.settle_chunk = sim::from_sec(2);
  mc.post_settle_run = sim::from_sec(1);
  mc.measure_window = sim::from_sec(5);
  mc.sensor_poll = sim::from_ms(500);
  sched::MachineConfig cfg;
  harness::ExperimentRunner runner(cfg, mc);
  const auto factory = []() -> std::unique_ptr<workload::Workload> {
    return std::make_unique<workload::CpuBurnFleet>(4);
  };
  const sim::SimTime warmup = sim::from_sec(kWarmupSeconds);

  WarmStartResult r;
  r.points = static_cast<int>(probs.size());
  r.warmup_sim_seconds = kWarmupSeconds;

  std::vector<harness::RunResult> cold;
  auto t0 = std::chrono::steady_clock::now();
  for (const double p : probs) {
    cold.push_back(runner.measure_after_warmup(
        factory, harness::actuation::dimetrodon(p, sim::from_ms(100)),
        warmup));
  }
  r.cold_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<harness::RunResult> warm;
  t0 = std::chrono::steady_clock::now();
  const sched::MachineSnapshot snap =
      runner.build_warmup_snapshot(factory, warmup);
  for (const double p : probs) {
    warm.push_back(runner.measure_warm(
        factory, harness::actuation::dimetrodon(p, sim::from_ms(100)), snap));
  }
  r.warm_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  r.speedup = r.warm_wall > 0.0 ? r.cold_wall / r.warm_wall : 0.0;
  r.bit_identical = true;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (cold[i].avg_sensor_temp_c != warm[i].avg_sensor_temp_c ||
        cold[i].avg_exact_temp_c != warm[i].avg_exact_temp_c ||
        cold[i].throughput != warm[i].throughput ||
        cold[i].avg_power_w != warm[i].avg_power_w ||
        cold[i].injected_idle_fraction != warm[i].injected_idle_fraction ||
        cold[i].sim_seconds != warm[i].sim_seconds) {
      r.bit_identical = false;
      std::fprintf(stderr,
                   "warm-start MISMATCH at p=%.2f: "
                   "sensor %.17g vs %.17g, throughput %.17g vs %.17g\n",
                   probs[i], cold[i].avg_sensor_temp_c,
                   warm[i].avg_sensor_temp_c, cold[i].throughput,
                   warm[i].throughput);
    }
  }
  return r;
}

void put_advance(std::FILE* f, const char* key, const AdvanceResult& r,
                 const char* trailing) {
  std::fprintf(
      f,
      "    \"%s\": {\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"sim_seconds_per_sec\": %.3f,\n"
      "      \"ns_per_substep\": %.3f,\n"
      "      \"substeps\": %llu,\n"
      "      \"fast_forward_steps\": %llu,\n"
      "      \"matvecs\": %llu,\n"
      "      \"factorizations\": %llu,\n"
      "      \"events_executed\": %llu\n"
      "    }%s\n",
      key, r.wall_seconds, r.sim_seconds_per_sec, r.ns_per_substep,
      static_cast<unsigned long long>(r.substeps),
      static_cast<unsigned long long>(r.fast_forward_steps),
      static_cast<unsigned long long>(r.matvecs),
      static_cast<unsigned long long>(r.factorizations),
      static_cast<unsigned long long>(r.events_executed), trailing);
}

int write_engine_json() {
  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string path = (env != nullptr && *env) ? env : "BENCH_engine.json";
  constexpr double kSimSeconds = 300.0;  // the paper's Fig. 2 horizon

  std::fprintf(stderr, "measuring %g s cpuburn×4 machine advance "
               "(reference stepper)...\n", kSimSeconds);
  const AdvanceResult ref = measure_machine_advance(true, kSimSeconds);
  std::fprintf(stderr, "measuring %g s cpuburn×4 machine advance "
               "(fast-forward)...\n", kSimSeconds);
  const AdvanceResult fast = measure_machine_advance(false, kSimSeconds);
  const double event_ops = measure_event_queue_ops_per_sec();
  const double speedup = ref.sim_seconds_per_sec > 0.0
                             ? fast.sim_seconds_per_sec / ref.sim_seconds_per_sec
                             : 0.0;
  std::fprintf(stderr, "measuring block-diagonal sparse advance...\n");
  const SparseResult sparse = measure_sparse_advance();
  std::fprintf(stderr, "measuring warm-start sweep (8 points, 240 s shared "
               "warmup)...\n");
  const WarmStartResult warm = measure_warm_start();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-engine v2\",\n"
               "  \"machine_advance\": {\n"
               "    \"workload\": \"cpuburn x4\",\n"
               "    \"sim_seconds\": %.1f,\n",
               kSimSeconds);
  put_advance(f, "reference", ref, ",");
  put_advance(f, "fast_forward", fast, ",");
  std::fprintf(f,
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"event_queue\": {\n"
               "    \"ops_per_sec\": %.0f\n"
               "  },\n",
               speedup, event_ops);
  std::fprintf(f,
               "  \"sparse\": {\n"
               "    \"nodes\": %zu,\n"
               "    \"dense_wall_seconds\": %.6f,\n"
               "    \"sparse_wall_seconds\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"sparse_matvecs\": %llu,\n"
               "    \"bit_identical\": %s\n"
               "  },\n",
               sparse.nodes, sparse.dense_wall, sparse.sparse_wall,
               sparse.speedup,
               static_cast<unsigned long long>(sparse.sparse_matvecs),
               sparse.bit_identical ? "true" : "false");
  std::fprintf(f,
               "  \"warm_start\": {\n"
               "    \"points\": %d,\n"
               "    \"warmup_sim_seconds\": %.1f,\n"
               "    \"cold_wall_seconds\": %.6f,\n"
               "    \"warm_wall_seconds\": %.6f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"bit_identical\": %s\n"
               "  }\n"
               "}\n",
               warm.points, warm.warmup_sim_seconds, warm.cold_wall,
               warm.warm_wall, warm.speedup,
               warm.bit_identical ? "true" : "false");
  std::fclose(f);
  std::fprintf(stderr,
               "machine advance: reference %.2f sim-s/s, fast-forward %.2f "
               "sim-s/s (%.1fx) -> %s\n",
               ref.sim_seconds_per_sec, fast.sim_seconds_per_sec, speedup,
               path.c_str());
  std::fprintf(stderr,
               "sparse advance: dense %.3fs, csr %.3fs (%.2fx, %llu sparse "
               "matvecs, identical=%d)\n",
               sparse.dense_wall, sparse.sparse_wall, sparse.speedup,
               static_cast<unsigned long long>(sparse.sparse_matvecs),
               sparse.bit_identical ? 1 : 0);
  std::fprintf(stderr,
               "warm start: cold %.3fs, warm %.3fs (%.2fx, identical=%d)\n",
               warm.cold_wall, warm.warm_wall, warm.speedup,
               warm.bit_identical ? 1 : 0);

  // Acceptance bars — a regression here fails the bench binary (and CI).
  int rc = 0;
  if (!sparse.bit_identical) {
    std::fprintf(stderr, "BAR FAILED: sparse path is not bit-identical\n");
    rc = 1;
  }
  if (sparse.sparse_matvecs == 0) {
    std::fprintf(stderr,
                 "BAR FAILED: CSR path never engaged on the block-diagonal "
                 "topology\n");
    rc = 1;
  }
  if (!warm.bit_identical) {
    std::fprintf(stderr,
                 "BAR FAILED: warm-start fork is not bit-identical to the "
                 "replayed warmup\n");
    rc = 1;
  }
  if (warm.speedup < 2.0) {
    std::fprintf(stderr,
                 "BAR FAILED: warm-start speedup %.2fx below the 2x bar\n",
                 warm.speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_engine_json();
}
