// Engine micro-benchmarks (google-benchmark): the hot paths that bound how
// fast the reproduction sweeps run — event queue churn, implicit-Euler RC
// stepping, scheduler dispatch, and whole-machine simulated seconds.
#include <benchmark/benchmark.h>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_network.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  sim::EventQueue q;
  sim::SimTime t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    q.schedule(t + 100, [&sink](sim::SimTime at) {
      sink += static_cast<std::uint64_t>(at);
    });
    t = q.pop_and_run();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void BM_EventQueueDeepHeap(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    for (int i = 0; i < depth; ++i) {
      q.schedule((i * 7919) % 104729, [](sim::SimTime) {});
    }
    state.ResumeTiming();
    while (!q.empty()) q.pop_and_run();
  }
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(42);
  double sink = 0.0;
  for (auto _ : state) sink += rng.uniform();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniform);

void BM_RcNetworkStep(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  net.set_power(nodes.package, 18.0);
  for (auto _ : state) net.step(0.00025);
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkStep);

void BM_RcNetworkSteadyState(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  for (auto _ : state) net.solve_steady_state();
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkSteadyState);

void BM_MachineSimulatedSecond(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = state.range(0) != 0;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(cfg.enable_meter ? "meter on" : "meter off");
}
BENCHMARK(BM_MachineSimulatedSecond)->Arg(0)->Arg(1);

void BM_MachineSecondUnderInjection(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  // Worst case for the event engine: 1 ms quanta at high probability.
  ctl.sys_set_global(0.75, sim::from_ms(state.range(0)));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
}
BENCHMARK(BM_MachineSecondUnderInjection)->Arg(1)->Arg(10)->Arg(100);

// Tracing overhead on the scheduler hot path. Arg 0: no sink attached (the
// probes must collapse to counter increments plus one predicted branch —
// the subsystem's <2% overhead budget). Arg 1: ring-buffer sink attached,
// showing the full cost of event capture. High-frequency injection maximizes
// probe density (sched switches + C-state transitions + injection events).
void BM_MachineSecondTracing(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  auto sink = std::make_shared<obs::RingBufferSink>();
  if (state.range(0) != 0) {
    cfg.trace_sink_factory = [sink]() { return sink; };
  }
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  ctl.sys_set_global(0.75, sim::from_ms(1));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(state.range(0) != 0 ? "ring-buffer sink" : "no sink");
  state.counters["events"] =
      static_cast<double>(machine.tracer().counters().totals().dispatches);
}
BENCHMARK(BM_MachineSecondTracing)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
