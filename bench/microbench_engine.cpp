// Engine micro-benchmarks (google-benchmark): the hot paths that bound how
// fast the reproduction sweeps run — event queue churn, implicit-Euler RC
// stepping, scheduler dispatch, and whole-machine simulated seconds.
//
// Besides the google-benchmark suite, main() always runs the acceptance
// measurement for the closed-form thermal fast-forward — the 300 s cpuburn×4
// machine-advance workload under the pre-fast-forward reference stepper and
// under the lazy clock — and writes the machine-readable result to
// BENCH_engine.json (override the path with DIMETRODON_BENCH_JSON) so CI can
// track the perf trajectory as an artifact.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_network.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  sim::EventQueue q;
  sim::SimTime t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    q.schedule(t + 100, [&sink](sim::SimTime at) {
      sink += static_cast<std::uint64_t>(at);
    });
    t = q.pop_and_run();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void BM_EventQueueDeepHeap(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    for (int i = 0; i < depth; ++i) {
      q.schedule((i * 7919) % 104729, [](sim::SimTime) {});
    }
    state.ResumeTiming();
    while (!q.empty()) q.pop_and_run();
  }
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(42);
  double sink = 0.0;
  for (auto _ : state) sink += rng.uniform();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniform);

void BM_RcNetworkStep(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  net.set_power(nodes.package, 18.0);
  for (auto _ : state) net.step(0.00025);
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkStep);

// The closed-form propagator: one simulated second of 250 µs substeps in
// O(log k) matvecs — the fast path under every machine advance.
void BM_RcNetworkFastForward(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  net.set_power(nodes.package, 18.0);
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) net.advance(0.00025, k);
  state.SetLabel(std::to_string(k) + " substeps/advance");
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkFastForward)->Arg(20)->Arg(4000);

void BM_RcNetworkSteadyState(benchmark::State& state) {
  thermal::RcNetwork net;
  thermal::FloorplanParams params;
  const auto nodes = thermal::build_server_floorplan(net, params);
  for (std::size_t i = 0; i < 4; ++i) net.set_power(nodes.die[i], 12.0);
  for (auto _ : state) net.solve_steady_state();
  benchmark::DoNotOptimize(net.temperature(nodes.die[0]));
}
BENCHMARK(BM_RcNetworkSteadyState);

void BM_MachineSimulatedSecond(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = state.range(0) != 0;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(cfg.enable_meter ? "meter on" : "meter off");
}
BENCHMARK(BM_MachineSimulatedSecond)->Arg(0)->Arg(1);

// Pre-fast-forward baseline: the 250 µs self-rescheduling substep event and
// one sequential LU solve per substep.
void BM_MachineSecondReferenceStepper(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.thermal_reference_stepper = true;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
}
BENCHMARK(BM_MachineSecondReferenceStepper);

void BM_MachineSecondUnderInjection(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  // Worst case for the event engine: 1 ms quanta at high probability.
  ctl.sys_set_global(0.75, sim::from_ms(state.range(0)));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
}
BENCHMARK(BM_MachineSecondUnderInjection)->Arg(1)->Arg(10)->Arg(100);

// Tracing overhead on the scheduler hot path. Arg 0: no sink attached (the
// probes must collapse to counter increments plus one predicted branch —
// the subsystem's <2% overhead budget). Arg 1: ring-buffer sink attached,
// showing the full cost of event capture. High-frequency injection maximizes
// probe density (sched switches + C-state transitions + injection events).
void BM_MachineSecondTracing(benchmark::State& state) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  auto sink = std::make_shared<obs::RingBufferSink>();
  if (state.range(0) != 0) {
    cfg.trace_sink_factory = [sink]() { return sink; };
  }
  sched::Machine machine(cfg);
  core::DimetrodonController ctl(machine);
  ctl.sys_set_global(0.75, sim::from_ms(1));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  for (auto _ : state) machine.run_for(sim::kSecond);
  state.SetLabel(state.range(0) != 0 ? "ring-buffer sink" : "no sink");
  state.counters["events"] =
      static_cast<double>(machine.tracer().counters().totals().dispatches);
}
BENCHMARK(BM_MachineSecondTracing)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Acceptance measurement: 300 s cpuburn×4 machine advance, reference stepper
// vs closed-form fast-forward, written as machine-readable JSON.
// ---------------------------------------------------------------------------

struct AdvanceResult {
  double wall_seconds = 0.0;
  double sim_seconds_per_sec = 0.0;
  double ns_per_substep = 0.0;
  std::uint64_t substeps = 0;
  std::uint64_t fast_forward_steps = 0;
  std::uint64_t matvecs = 0;
  std::uint64_t factorizations = 0;
  std::uint64_t events_executed = 0;
};

AdvanceResult measure_machine_advance(bool reference, double sim_seconds) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.thermal_reference_stepper = reference;
  sched::Machine machine(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  const auto t0 = std::chrono::steady_clock::now();
  machine.run_for(sim::from_sec(sim_seconds));
  const auto t1 = std::chrono::steady_clock::now();

  AdvanceResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sim_seconds_per_sec =
      r.wall_seconds > 0.0 ? sim_seconds / r.wall_seconds : 0.0;
  const obs::CounterTotals t = machine.counters().totals();
  r.substeps = t.thermal_substeps;
  r.fast_forward_steps = t.thermal_fast_forward_steps;
  r.matvecs = t.thermal_matvecs;
  r.factorizations = t.thermal_factorizations;
  r.events_executed = machine.simulator().events_executed();
  r.ns_per_substep =
      r.substeps > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.substeps)
                     : 0.0;
  return r;
}

double measure_event_queue_ops_per_sec() {
  sim::EventQueue q;
  sim::SimTime t = 0;
  std::uint64_t sink = 0;
  constexpr int kOps = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    q.schedule(t + 100, [&sink](sim::SimTime at) {
      sink += static_cast<std::uint64_t>(at);
    });
    t = q.pop_and_run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0.0 ? kOps / wall : 0.0;
}

void put_advance(std::FILE* f, const char* key, const AdvanceResult& r,
                 const char* trailing) {
  std::fprintf(
      f,
      "    \"%s\": {\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"sim_seconds_per_sec\": %.3f,\n"
      "      \"ns_per_substep\": %.3f,\n"
      "      \"substeps\": %llu,\n"
      "      \"fast_forward_steps\": %llu,\n"
      "      \"matvecs\": %llu,\n"
      "      \"factorizations\": %llu,\n"
      "      \"events_executed\": %llu\n"
      "    }%s\n",
      key, r.wall_seconds, r.sim_seconds_per_sec, r.ns_per_substep,
      static_cast<unsigned long long>(r.substeps),
      static_cast<unsigned long long>(r.fast_forward_steps),
      static_cast<unsigned long long>(r.matvecs),
      static_cast<unsigned long long>(r.factorizations),
      static_cast<unsigned long long>(r.events_executed), trailing);
}

int write_engine_json() {
  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string path = (env != nullptr && *env) ? env : "BENCH_engine.json";
  constexpr double kSimSeconds = 300.0;  // the paper's Fig. 2 horizon

  std::fprintf(stderr, "measuring %g s cpuburn×4 machine advance "
               "(reference stepper)...\n", kSimSeconds);
  const AdvanceResult ref = measure_machine_advance(true, kSimSeconds);
  std::fprintf(stderr, "measuring %g s cpuburn×4 machine advance "
               "(fast-forward)...\n", kSimSeconds);
  const AdvanceResult fast = measure_machine_advance(false, kSimSeconds);
  const double event_ops = measure_event_queue_ops_per_sec();
  const double speedup = ref.sim_seconds_per_sec > 0.0
                             ? fast.sim_seconds_per_sec / ref.sim_seconds_per_sec
                             : 0.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-engine v1\",\n"
               "  \"machine_advance\": {\n"
               "    \"workload\": \"cpuburn x4\",\n"
               "    \"sim_seconds\": %.1f,\n",
               kSimSeconds);
  put_advance(f, "reference", ref, ",");
  put_advance(f, "fast_forward", fast, ",");
  std::fprintf(f,
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"event_queue\": {\n"
               "    \"ops_per_sec\": %.0f\n"
               "  }\n"
               "}\n",
               speedup, event_ops);
  std::fclose(f);
  std::fprintf(stderr,
               "machine advance: reference %.2f sim-s/s, fast-forward %.2f "
               "sim-s/s (%.1fx) -> %s\n",
               ref.sim_seconds_per_sec, fast.sim_seconds_per_sec, speedup,
               path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_engine_json();
}
