// §3.3 model validation:
//  (a) Throughput: measured runtimes of a finite cpuburn under p x L
//      configurations versus the analytic model D(t) = R + (R/q)(p/(1-p))L.
//      The paper ran 100 trials per configuration and found throughput on
//      average 1.0% lower than predicted, worsening with p (context switch
//      and state-monitoring overheads).
//  (b) Power/energy: Dimetrodon vs race-to-idle energy over equal windows,
//      measured through the clamp+multimeter model; the paper found ratios
//      between 97.6% and 103.7% (mean deviation -0.37%).
#include <cstdio>

#include "analysis/bootstrap.hpp"
#include "bench_util.hpp"
#include "core/analytic_model.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

constexpr double kWorkSeconds = 7.0;  // the paper's 7 s cpuburn loop
constexpr double kQuantumSeconds = 0.1;

/// Per-instance completion times across trials with distinct seeds.
std::vector<double> measured_runtimes(double p, sim::SimTime quantum,
                                      int trials) {
  std::vector<double> out;
  for (int trial = 0; trial < trials; ++trial) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    cfg.seed = 0x1234 + 7919ULL * static_cast<std::uint64_t>(trial);
    sched::Machine machine(cfg);
    core::DimetrodonController ctl(machine);
    ctl.sys_set_global(p, quantum);
    workload::CpuBurnFleet fleet(4, kWorkSeconds);
    fleet.deploy(machine);
    machine.run_until_condition([&] { return fleet.all_done(machine); },
                                sim::from_sec(300));
    for (const auto tid : fleet.threads()) {
      out.push_back(sim::to_sec(machine.thread(tid).finished_at() -
                                machine.thread(tid).created_at()));
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Section 3.3: model validation ===\n");

  // (a) Throughput model.
  std::printf("\n-- Throughput: measured vs D(t) = R + (R/q)(p/(1-p))L "
              "(mean of 25 trials x 4 instances) --\n");
  trace::CsvWriter csv(bench::csv_path("validation_throughput.csv"),
                       {"p", "L_ms", "predicted_s", "measured_s",
                        "deviation_pct"});
  trace::Table table({"p", "L(ms)", "predicted(s)", "measured(s)",
                      "95% CI", "dev(%)"});
  double dev_sum = 0.0;
  int dev_n = 0;
  for (const double p : {0.25, 0.5, 0.75}) {
    for (const double l_ms : {25.0, 50.0, 75.0, 100.0}) {
      const double predicted = core::AnalyticModel::predicted_runtime(
          kWorkSeconds, kQuantumSeconds, p, l_ms / 1000.0);
      const auto samples =
          measured_runtimes(p, sim::from_ms(l_ms), /*trials=*/25);
      const auto ci = analysis::bootstrap_mean_ci(samples);
      const double measured = ci.mean;
      const double dev = 100.0 * (measured - predicted) / predicted;
      dev_sum += dev;
      ++dev_n;
      table.add_row({trace::fmt("%.2f", p), trace::fmt("%.0f", l_ms),
                     trace::fmt("%.3f", predicted),
                     trace::fmt("%.3f", measured),
                     trace::fmt("[%.3f, %.3f]", ci.lower, ci.upper),
                     trace::fmt("%+.2f", dev)});
      csv.write_row(std::vector<double>{p, l_ms, predicted, measured, dev});
    }
  }
  table.print(std::cout);
  std::printf("mean deviation: %+.2f%% (paper: throughput ~1.0%% lower than "
              "predicted, i.e. runtimes ~+1%%)\n",
              dev_sum / dev_n);

  // (b) Energy model.
  std::printf("\n-- Energy: Dimetrodon vs race-to-idle over equal windows "
              "(measured through the clamp model, 5 trials each) --\n");
  trace::Table etable({"p", "L(ms)", "E_dim(J)", "E_rti(J)", "ratio"});
  trace::CsvWriter ecsv(bench::csv_path("validation_energy.csv"),
                        {"p", "L_ms", "e_dimetrodon_j", "e_race_to_idle_j",
                         "ratio"});
  double ratio_sum = 0.0;
  double absdev_sum = 0.0;
  int ratio_n = 0;
  for (const double p : {0.25, 0.5, 0.75}) {
    for (const double l_ms : {50.0, 100.0}) {
      double edim_sum = 0.0;
      double erti_sum = 0.0;
      for (int trial = 0; trial < 5; ++trial) {
        sched::MachineConfig cfg;
        cfg.seed = 0x900d + 104729ULL * static_cast<std::uint64_t>(trial);
        harness::ExperimentRunner runner(cfg, harness::MeasurementConfig{});
        const auto burn = [] {
          return std::make_unique<workload::CpuBurnFleet>(4, kWorkSeconds);
        };
        const auto dim = runner.run_to_completion(
            burn, harness::dimetrodon_global(p, sim::from_ms(l_ms)),
            sim::from_sec(300));
        const auto rti =
            runner.run_window(burn, harness::no_actuation(),
                              sim::from_sec(dim.completion_seconds));
        edim_sum += dim.meter_energy_j;
        erti_sum += rti.meter_energy_j;
      }
      const double ratio = edim_sum / erti_sum;
      ratio_sum += ratio;
      absdev_sum += std::fabs(ratio - 1.0);
      ++ratio_n;
      etable.add_row({trace::fmt("%.2f", p), trace::fmt("%.0f", l_ms),
                      trace::fmt("%.1f", edim_sum / 5),
                      trace::fmt("%.1f", erti_sum / 5),
                      trace::fmt("%.3f", ratio)});
      ecsv.write_row(
          std::vector<double>{p, l_ms, edim_sum / 5, erti_sum / 5, ratio});
    }
  }
  etable.print(std::cout);
  std::printf("mean ratio %.4f, mean |deviation| %.2f%% (paper: ratios in "
              "[0.976, 1.037], mean deviation -0.37%%, mean |dev| 1.67%%)\n",
              ratio_sum / ratio_n, 100.0 * absdev_sum / ratio_n);
  std::printf("\nCSV: %s, %s\n",
              bench::csv_path("validation_throughput.csv").c_str(),
              bench::csv_path("validation_energy.csv").c_str());
  return 0;
}
