// §3.3 model validation:
//  (a) Throughput: measured runtimes of a finite cpuburn under p x L
//      configurations versus the analytic model D(t) = R + (R/q)(p/(1-p))L.
//      The paper ran 100 trials per configuration and found throughput on
//      average 1.0% lower than predicted, worsening with p (context switch
//      and state-monitoring overheads).
//  (b) Power/energy: Dimetrodon vs race-to-idle energy over equal windows,
//      measured through the clamp+multimeter model; the paper found ratios
//      between 97.6% and 103.7% (mean deviation -0.37%).
#include <cstdio>

#include "analysis/bootstrap.hpp"
#include "bench_util.hpp"
#include "core/analytic_model.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

constexpr double kWorkSeconds = 7.0;  // the paper's 7 s cpuburn loop
constexpr double kQuantumSeconds = 0.1;

// Master seeds of the two trial families; trial k runs under
// sim::derive_stream_seed(master, k), so every trial is an independent,
// order-insensitive stream.
constexpr std::uint64_t kThroughputSeed = 0x1234;
constexpr std::uint64_t kEnergySeed = 0x900d;

/// One runtime trial: run the finite cpuburn fleet to completion and record
/// each instance's completion time as a sample.
runner::RunSpec runtime_trial_spec(const sched::MachineConfig& base, double p,
                                   sim::SimTime quantum, int trial) {
  auto spec = bench::custom_spec(
      base,
      trace::fmt("validation-throughput[p=%a,L=%lld,work=%a,trial=%d]", p,
                 static_cast<long long>(quantum), kWorkSeconds, trial),
      [p, quantum](const runner::RunSpec&, const sched::MachineConfig& cfg) {
        sched::MachineConfig mcfg = cfg;
        mcfg.enable_meter = false;
        sched::Machine machine(mcfg);
        core::DimetrodonController ctl(machine);
        ctl.sys_set_global(p, quantum);
        workload::CpuBurnFleet fleet(4, kWorkSeconds);
        fleet.deploy(machine);
        machine.run_until_condition([&] { return fleet.all_done(machine); },
                                    sim::from_sec(300));
        runner::RunRecord rec;
        for (const auto tid : fleet.threads()) {
          rec.samples.push_back(
              sim::to_sec(machine.thread(tid).finished_at() -
                          machine.thread(tid).created_at()));
        }
        rec.extra = {{"sim_seconds", sim::to_sec(machine.now())}};
        return rec;
      });
  spec.seed = sim::derive_stream_seed(kThroughputSeed,
                                      static_cast<std::uint64_t>(trial));
  return spec;
}

/// One energy trial: Dimetrodon run to completion, then race-to-idle over
/// the same wall window; extras carry the two metered energies.
runner::RunSpec energy_trial_spec(const sched::MachineConfig& base, double p,
                                  sim::SimTime quantum, int trial) {
  auto spec = bench::custom_spec(
      base,
      trace::fmt("validation-energy[p=%a,L=%lld,work=%a,trial=%d]", p,
                 static_cast<long long>(quantum), kWorkSeconds, trial),
      [p, quantum](const runner::RunSpec&, const sched::MachineConfig& cfg) {
        harness::ExperimentRunner r(cfg, harness::MeasurementConfig{});
        const auto burn = [] {
          return std::make_unique<workload::CpuBurnFleet>(4, kWorkSeconds);
        };
        const auto dim = r.run_to_completion(
            burn, harness::actuation::dimetrodon(p, quantum), sim::from_sec(300));
        const auto rti = r.run_window(burn, harness::actuation::none(),
                                      sim::from_sec(dim.completion_seconds));
        runner::RunRecord rec;
        rec.window = dim;
        rec.extra = {{"e_dim_j", dim.meter_energy_j},
                     {"e_rti_j", rti.meter_energy_j},
                     {"sim_seconds", rti.wall_seconds}};
        return rec;
      });
  spec.seed =
      sim::derive_stream_seed(kEnergySeed, static_cast<std::uint64_t>(trial));
  return spec;
}

}  // namespace

int main() {
  std::printf("=== Section 3.3: model validation ===\n");
  sched::MachineConfig cfg;
  auto engine = bench::make_engine(cfg, "validation_model");

  const std::vector<double> ps = {0.25, 0.5, 0.75};
  const std::vector<double> throughput_ls_ms = {25.0, 50.0, 75.0, 100.0};
  const std::vector<double> energy_ls_ms = {50.0, 100.0};
  constexpr int kRuntimeTrials = 25;
  constexpr int kEnergyTrials = 5;

  // Both experiment families go through the engine as one flat grid.
  std::vector<runner::RunSpec> specs;
  for (const double p : ps) {
    for (const double l_ms : throughput_ls_ms) {
      for (int trial = 0; trial < kRuntimeTrials; ++trial) {
        specs.push_back(runtime_trial_spec(cfg, p, sim::from_ms(l_ms), trial));
      }
    }
  }
  for (const double p : ps) {
    for (const double l_ms : energy_ls_ms) {
      for (int trial = 0; trial < kEnergyTrials; ++trial) {
        specs.push_back(energy_trial_spec(cfg, p, sim::from_ms(l_ms), trial));
      }
    }
  }
  const auto records = bench::run_all_or_die(engine, specs);
  std::size_t next_record = 0;

  // (a) Throughput model.
  std::printf("\n-- Throughput: measured vs D(t) = R + (R/q)(p/(1-p))L "
              "(mean of %d trials x 4 instances) --\n",
              kRuntimeTrials);
  trace::CsvWriter csv(bench::csv_path("validation_throughput.csv"),
                       {"p", "L_ms", "predicted_s", "measured_s",
                        "deviation_pct"});
  trace::Table table({"p", "L(ms)", "predicted(s)", "measured(s)",
                      "95% CI", "dev(%)"});
  double dev_sum = 0.0;
  int dev_n = 0;
  for (const double p : ps) {
    for (const double l_ms : throughput_ls_ms) {
      const double predicted = core::AnalyticModel::predicted_runtime(
          kWorkSeconds, kQuantumSeconds, p, l_ms / 1000.0);
      std::vector<double> samples;
      for (int trial = 0; trial < kRuntimeTrials; ++trial) {
        const auto& rec = records.at(next_record++);
        samples.insert(samples.end(), rec.samples.begin(), rec.samples.end());
      }
      const auto ci = analysis::bootstrap_mean_ci(samples);
      const double measured = ci.mean;
      const double dev = 100.0 * (measured - predicted) / predicted;
      dev_sum += dev;
      ++dev_n;
      table.add_row({trace::fmt("%.2f", p), trace::fmt("%.0f", l_ms),
                     trace::fmt("%.3f", predicted),
                     trace::fmt("%.3f", measured),
                     trace::fmt("[%.3f, %.3f]", ci.lower, ci.upper),
                     trace::fmt("%+.2f", dev)});
      csv.write_row(std::vector<double>{p, l_ms, predicted, measured, dev});
    }
  }
  table.print(std::cout);
  std::printf("mean deviation: %+.2f%% (paper: throughput ~1.0%% lower than "
              "predicted, i.e. runtimes ~+1%%)\n",
              dev_sum / dev_n);

  // (b) Energy model.
  std::printf("\n-- Energy: Dimetrodon vs race-to-idle over equal windows "
              "(measured through the clamp model, %d trials each) --\n",
              kEnergyTrials);
  trace::Table etable({"p", "L(ms)", "E_dim(J)", "E_rti(J)", "ratio"});
  trace::CsvWriter ecsv(bench::csv_path("validation_energy.csv"),
                        {"p", "L_ms", "e_dimetrodon_j", "e_race_to_idle_j",
                         "ratio"});
  double ratio_sum = 0.0;
  double absdev_sum = 0.0;
  int ratio_n = 0;
  for (const double p : ps) {
    for (const double l_ms : energy_ls_ms) {
      double edim_sum = 0.0;
      double erti_sum = 0.0;
      for (int trial = 0; trial < kEnergyTrials; ++trial) {
        const auto& rec = records.at(next_record++);
        edim_sum += rec.metric("e_dim_j");
        erti_sum += rec.metric("e_rti_j");
      }
      const double ratio = edim_sum / erti_sum;
      ratio_sum += ratio;
      absdev_sum += std::fabs(ratio - 1.0);
      ++ratio_n;
      etable.add_row({trace::fmt("%.2f", p), trace::fmt("%.0f", l_ms),
                      trace::fmt("%.1f", edim_sum / kEnergyTrials),
                      trace::fmt("%.1f", erti_sum / kEnergyTrials),
                      trace::fmt("%.3f", ratio)});
      ecsv.write_row(std::vector<double>{p, l_ms, edim_sum / kEnergyTrials,
                                         erti_sum / kEnergyTrials, ratio});
    }
  }
  etable.print(std::cout);
  std::printf("mean ratio %.4f, mean |deviation| %.2f%% (paper: ratios in "
              "[0.976, 1.037], mean deviation -0.37%%, mean |dev| 1.67%%)\n",
              ratio_sum / ratio_n, 100.0 * absdev_sum / ratio_n);
  std::printf("\nCSV: %s, %s\n",
              bench::csv_path("validation_throughput.csv").c_str(),
              bench::csv_path("validation_energy.csv").c_str());
  return 0;
}
