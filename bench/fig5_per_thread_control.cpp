// Figure 5: global versus thread-specific control. A periodic "cool" process
// (cpuburn for 6 s, sleep 60 s, repeat) co-located with a "hot" process
// (four instances of calculix). Plot: cool-process throughput (%) versus
// system temperature reduction over idle (%), for policies applied globally
// versus only to the hot threads. With per-thread control the cool process
// runs (nearly) uninterrupted while the system cools.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "workload/cool_process.hpp"
#include "workload/spec.hpp"

using namespace dimetrodon;

namespace {

struct Outcome {
  double temp_reduction = 0.0;   // over idle, vs unconstrained, sensor
  double cool_throughput = 0.0;  // fraction of unconstrained cool progress
};

// Custom engine run: deploy hot calculix + the cool process, apply the
// policy globally or to the hot threads only, settle, then measure over a
// few cool-process periods. Returns extras: avg_temp, cool_burst_rate
// (1/stretch: execution speed of its bursts), idle_temp.
runner::RunSpec config_spec(const sched::MachineConfig& base, double p,
                            sim::SimTime quantum, bool per_thread) {
  const std::string tag =
      trace::fmt("fig5[p=%a,L=%lld,scope=%s]", p,
                 static_cast<long long>(quantum),
                 per_thread ? "per-thread" : "global");
  return bench::custom_spec(
      base, tag,
      [p, quantum, per_thread](const runner::RunSpec&,
                               const sched::MachineConfig& cfg) {
        sched::Machine machine(cfg);
        const double idle_temp = machine.mean_sensor_temp();
        core::DimetrodonController ctl(machine);
        workload::SpecFleet hot(*workload::find_spec_profile("calculix"), 4);
        workload::CoolProcess cool;
        hot.deploy(machine);
        cool.deploy(machine);
        if (p > 0.0) {
          if (per_thread) {
            // Target only the hot threads; the cool process is untouched.
            for (const auto tid : hot.threads()) {
              ctl.sys_set_thread(tid, p, quantum);
            }
          } else {
            ctl.sys_set_global(p, quantum);
          }
        }
        // Settle, then measure over two cool-process periods.
        for (int i = 0; i < 4; ++i) {
          machine.mark_power_window();
          machine.run_for(sim::from_sec(8));
          machine.jump_to_average_power_steady_state();
        }
        machine.run_for(sim::from_sec(3));
        analysis::OnlineStats temp;
        const int seconds = 200;  // covers a few cool-process periods
        for (int s = 0; s < seconds; ++s) {
          machine.run_for(sim::kSecond);
          temp.add(machine.mean_sensor_temp());
        }
        runner::RunRecord rec;
        rec.extra = {{"avg_temp", temp.mean()},
                     {"cool_burst_rate", 1.0 / cool.mean_burst_stretch()},
                     {"idle_temp", idle_temp},
                     {"sim_seconds", sim::to_sec(machine.now())}};
        return rec;
      });
}

}  // namespace

int main() {
  std::printf("=== Figure 5: global vs thread-specific control ===\n");
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  auto engine = bench::make_engine(cfg, "fig5_per_thread_control");

  const std::vector<std::pair<double, double>> settings = {
      {0.25, 25.0}, {0.5, 25.0}, {0.5, 100.0}, {0.75, 100.0}, {0.9, 100.0}};

  std::vector<runner::RunSpec> specs;
  specs.push_back(config_spec(cfg, 0.0, 0, false));  // unconstrained
  for (const bool per_thread : {false, true}) {
    for (const auto& [p, l] : settings) {
      specs.push_back(config_spec(cfg, p, sim::from_ms(l), per_thread));
    }
  }
  const auto records = bench::run_all_or_die(engine, specs);

  const auto& base = records.at(0);
  const double base_rise = base.metric("avg_temp") - base.metric("idle_temp");
  std::printf("unconstrained: temp rise %.1f C, cool-process burst rate "
              "%.3f\n",
              base_rise, base.metric("cool_burst_rate"));

  trace::CsvWriter csv(bench::csv_path("fig5_per_thread_control.csv"),
                       {"scope", "p", "L_ms", "temp_reduction_pct",
                        "cool_throughput_pct"});
  trace::Table table({"scope", "p", "L(ms)", "temp_red(%)", "cool_thr(%)"});
  std::vector<analysis::TradeoffPoint> per_thread_pts;
  std::vector<analysis::TradeoffPoint> global_pts;
  std::size_t next_record = 1;
  for (const bool per_thread : {false, true}) {
    for (const auto& [p, l] : settings) {
      const auto& r = records.at(next_record++);
      Outcome o;
      o.temp_reduction = (base.metric("avg_temp") - r.metric("avg_temp")) /
                         base_rise;
      // Normalized to uncontended execution (stretch 1.0); the co-located
      // unconstrained baseline itself sits at ~82% due to CPU contention.
      o.cool_throughput = r.metric("cool_burst_rate");
      const char* scope = per_thread ? "per-thread" : "global";
      table.add_row({scope, trace::fmt("%.2f", p), trace::fmt("%.0f", l),
                     trace::fmt("%5.1f", 100 * o.temp_reduction),
                     trace::fmt("%5.1f", 100 * o.cool_throughput)});
      csv.write_row({scope, trace::fmt("%.2f", p), trace::fmt("%.0f", l),
                     trace::fmt("%.2f", 100 * o.temp_reduction),
                     trace::fmt("%.2f", 100 * o.cool_throughput)});
      auto& bucket = per_thread ? per_thread_pts : global_pts;
      bucket.push_back(analysis::TradeoffPoint{
          o.temp_reduction, o.cool_throughput,
          trace::fmt("%s p=%.2f L=%.0f", scope, p, l)});
    }
  }
  table.print(std::cout);

  std::printf("\npareto boundaries (darkened in the paper's figure):\n");
  for (const auto& f : analysis::pareto_frontier(per_thread_pts)) {
    std::printf("  [per-thread] r=%5.1f%% cool throughput %5.1f%%\n",
                100 * f.temp_reduction, 100 * f.performance_retained);
  }
  for (const auto& f : analysis::pareto_frontier(global_pts)) {
    std::printf("  [global]     r=%5.1f%% cool throughput %5.1f%%\n",
                100 * f.temp_reduction, 100 * f.performance_retained);
  }
  std::printf("\npaper anchor: with thread-specific control the cool process "
              "runs (near) uninterrupted while system temperature drops; "
              "global policies unfairly penalize it.\n");
  std::printf("CSV: %s\n",
              bench::csv_path("fig5_per_thread_control.csv").c_str());
  return 0;
}
