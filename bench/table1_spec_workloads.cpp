// Table 1: real-workload results. For each selected SPEC CPU2006 benchmark:
// the average per-core temperature rise over idle as a percentage of
// cpuburn's (race-to-idle, unmodified), and the best-fit power law
// T(r) = alpha * r^beta for the throughput reduction required at temperature
// reduction r over the pareto boundary, fit on r in [0, 0.5].
#include <cstdio>

#include "analysis/fit.hpp"
#include "bench_util.hpp"
#include "workload/cpuburn.hpp"
#include "workload/spec.hpp"

using namespace dimetrodon;

namespace {

struct PaperRow {
  const char* name;
  double rise_pct;
  double alpha;
  double beta;
};

// Table 1 as printed in the paper.
constexpr PaperRow kPaperRows[] = {
    {"cpuburn", 100.0, 1.092, 1.541}, {"calculix", 99.3, 1.282, 1.697},
    {"namd", 87.2, 1.248, 1.546},     {"dealII", 84.4, 1.324, 1.688},
    {"bzip2", 84.4, 1.529, 1.811},    {"gcc", 80.3, 1.425, 1.848},
    {"astar", 71.7, 1.351, 1.416},
};

}  // namespace

int main() {
  std::printf("=== Table 1: SPEC CPU2006 thermal profiles and trade-off "
              "fits ===\n");
  sched::MachineConfig cfg;
  auto engine = bench::make_engine(cfg, "table1_spec_workloads");

  // Sweep grid per workload (pareto boundary is fit over these).
  const std::vector<double> ps = {0.25, 0.5, 0.75};
  const std::vector<double> ls_ms = {5, 10, 25, 50, 100};
  const std::size_t grid_size = ps.size() * ls_ms.size();

  // One engine pass over every workload's baseline + grid: per workload,
  // records [w*(1+grid)] is the unconstrained baseline and the grid follows.
  std::vector<runner::RunSpec> specs;
  for (const PaperRow& row : kPaperRows) {
    const auto key = bench::workload_key(row.name, 4);
    const auto factory = bench::workload_fleet(row.name, 4);
    specs.push_back(
        bench::measure_spec(cfg, key, factory, runner::ActuationSpec::none()));
    for (const double p : ps) {
      for (const double l : ls_ms) {
        specs.push_back(bench::measure_spec(
            cfg, key, factory,
            runner::ActuationSpec::global(p, sim::from_ms(l))));
      }
    }
  }
  const auto records = bench::run_all_or_die(engine, specs);

  // cpuburn reference rise (kPaperRows[0] is cpuburn).
  const auto& burn_base = records.at(0).result;
  const double burn_rise =
      burn_base.avg_sensor_temp_c - burn_base.idle_sensor_temp_c;

  trace::CsvWriter csv(bench::csv_path("table1_spec_workloads.csv"),
                       {"workload", "rise_pct", "alpha", "beta", "fit_r2",
                        "paper_rise_pct", "paper_alpha", "paper_beta"});
  trace::Table table({"Workload", "Rise(%)", "alpha", "beta",
                      "paper:Rise", "paper:a", "paper:b"});

  std::size_t next_record = 0;
  for (const PaperRow& row : kPaperRows) {
    const auto& base = records.at(next_record++).result;
    const double rise_pct =
        100.0 * (base.avg_sensor_temp_c - base.idle_sensor_temp_c) /
        burn_rise;

    // Pareto boundary over the grid, fit T(r) = alpha * r^beta, r<=0.5.
    std::vector<bench::SweepPoint> points;
    for (std::size_t g = 0; g < grid_size; ++g) {
      const auto& run = records.at(next_record++).result;
      points.push_back(bench::SweepPoint{
          run.label, harness::compute_tradeoff(base, run), run});
    }
    std::vector<analysis::TradeoffPoint> tps;
    for (const auto& pt : points) tps.push_back(bench::to_tradeoff_point(pt));
    const auto frontier = analysis::pareto_frontier(std::move(tps));
    std::vector<double> rs;
    std::vector<double> ts;
    for (const auto& f : frontier) {
      const double r = f.temp_reduction;
      const double t = 1.0 - f.performance_retained;
      if (r > 0.01 && r <= 0.5 && t > 0.001) {
        rs.push_back(r);
        ts.push_back(t);
      }
    }
    analysis::PowerLawFit fit;
    if (rs.size() >= 2) fit = analysis::fit_power_law(rs, ts);

    table.add_row({row.name, trace::fmt("%5.1f", rise_pct),
                   trace::fmt("%.3f", fit.alpha), trace::fmt("%.3f", fit.beta),
                   trace::fmt("%5.1f", row.rise_pct),
                   trace::fmt("%.3f", row.alpha),
                   trace::fmt("%.3f", row.beta)});
    csv.write_row({row.name, trace::fmt("%.3f", rise_pct),
                   trace::fmt("%.4f", fit.alpha), trace::fmt("%.4f", fit.beta),
                   trace::fmt("%.4f", fit.r_squared),
                   trace::fmt("%.1f", row.rise_pct),
                   trace::fmt("%.3f", row.alpha),
                   trace::fmt("%.3f", row.beta)});
  }
  table.print(std::cout);
  std::printf("\npaper anchors: rise%% ordering calculix > namd > dealII ~ "
              "bzip2 > gcc > astar; pareto trade-off fits similar across "
              "workloads (alpha ~1.1-1.5, beta ~1.4-1.8); all better than "
              "1:1 until at least 50%% reductions.\n");
  std::printf("CSV: %s\n",
              bench::csv_path("table1_spec_workloads.csv").c_str());
  return 0;
}
