// Figure 2: average core temperature rise over idle during five minutes of
// cpuburn execution for idle proportions p in {0, .25, .5, .75} at L=100 ms.
// Real-time integration (no accelerated settling): the series must show the
// ~300 s stabilization and the probabilistic fluctuations the paper notes.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/series.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

int main() {
  std::printf("=== Figure 2: core temperature rise over idle, 300 s of "
              "cpuburn (L=100 ms) ===\n");
  const std::vector<double> ps = {0.0, 0.25, 0.5, 0.75};
  const int seconds = 300;

  std::vector<std::vector<double>> series;  // per p: rise at each second
  double idle_temp = 0.0;
  for (const double p : ps) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine machine(cfg);
    idle_temp = machine.mean_sensor_temp();
    std::unique_ptr<core::DimetrodonController> ctl;
    if (p > 0.0) {
      ctl = std::make_unique<core::DimetrodonController>(machine);
      ctl->sys_set_global(p, sim::from_ms(100));
    }
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(machine);
    std::vector<double> rises;
    rises.reserve(seconds);
    for (int s = 0; s < seconds; ++s) {
      // Average ten 100 ms sub-samples per plotted point, like a polling
      // data-acquisition loop: instantaneous reads alias the millisecond
      // die-temperature chop of individual idle quanta.
      double sum = 0.0;
      for (int k = 0; k < 10; ++k) {
        machine.run_for(sim::from_ms(100));
        sum += machine.mean_sensor_temp();
      }
      rises.push_back(sum / 10.0 - idle_temp);
    }
    series.push_back(std::move(rises));
  }

  trace::CsvWriter csv(bench::csv_path("fig2_temperature_curves.csv"),
                       {"time_s", "p0", "p25", "p50", "p75"});
  for (int s = 0; s < seconds; ++s) {
    csv.write_row(std::vector<double>{static_cast<double>(s + 1),
                                      series[0][s], series[1][s],
                                      series[2][s], series[3][s]});
  }

  trace::Table table({"t(s)", "p=0", "p=.25", "p=.5", "p=.75"});
  for (int s = 29; s < seconds; s += 30) {
    table.add_row({trace::fmt("%d", s + 1), trace::fmt("%5.1f", series[0][s]),
                   trace::fmt("%5.1f", series[1][s]),
                   trace::fmt("%5.1f", series[2][s]),
                   trace::fmt("%5.1f", series[3][s])});
  }
  table.print(std::cout);

  // In-terminal rendition of the figure: the unconstrained and p=.5 curves.
  std::vector<trace::SeriesPoint> unconstrained;
  std::vector<trace::SeriesPoint> p50;
  for (int s2 = 0; s2 < seconds; ++s2) {
    unconstrained.push_back({static_cast<double>(s2 + 1), series[0][s2]});
    p50.push_back({static_cast<double>(s2 + 1), series[2][s2]});
  }
  std::printf("\n%s", trace::ascii_chart(unconstrained, 72, 10,
                                          "rise over idle (C), p=0").c_str());
  std::printf("\n%s", trace::ascii_chart(p50, 72, 10,
                                          "rise over idle (C), p=0.5").c_str());

  // Summary rows: mean rise over the final 30 s (the paper's measurement
  // convention) and time to reach 95% of it.
  std::printf("\nsummary (idle temp %.1f C):\n", idle_temp);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    double final_rise = 0.0;
    for (int s = seconds - 30; s < seconds; ++s) final_rise += series[i][s];
    final_rise /= 30.0;
    int t95 = seconds;
    for (int s = 0; s < seconds; ++s) {
      if (series[i][s] >= 0.95 * final_rise) {
        t95 = s + 1;
        break;
      }
    }
    std::printf("  p=%.2f: final rise %5.2f C over idle, within 5%% of it "
                "by t=%3d s\n",
                ps[i], final_rise, t95);
  }
  std::printf("\npaper anchors: temperatures stabilize after ~300 s; curves "
              "separate cleanly by p; probabilistic implementation makes "
              "higher-p curves fluctuate.\n");
  std::printf("CSV: %s\n",
              bench::csv_path("fig2_temperature_curves.csv").c_str());
  return 0;
}
