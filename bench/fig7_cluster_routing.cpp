// Figure 7 (extension): thermal-aware request routing across a heterogeneous
// four-node fleet. Each node is a full machine simulation; cooling quality
// degrades across the rack (fan fractions 1.00 -> 0.55) and operators dial
// Dimetrodon's injection probability up on the worse-cooled nodes. The sweep
// crosses routing policy x injection intensity x offered load and reports
// fleet throughput, latency percentiles (p50/p95/p99) and peak temperature.
//
// Expected shape: at equal offered load, coolest-node and injection-aware
// routing shave the fleet's peak temperature relative to round-robin (they
// steer work away from the badly cooled, heavily injected tail node), and
// injection-aware additionally protects p99 latency once the injected nodes
// no longer have the spare capacity round-robin assumes.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "cluster/fleet_spec.hpp"

using namespace dimetrodon;

namespace {

// Rack heterogeneity via FleetSpec gradients: cooling degrades linearly from
// the bottom slot (fan 1.00) to the top (0.55), and the injection gradient
// gives each position the preventive intensity an operator would assign to
// compensate (p = p_base * pos / 3: hotter rack position -> more throttling).
cluster::ClusterRunSpec make_point(const sched::MachineConfig& base,
                                   cluster::PolicyKind policy, double p_base,
                                   double load_rps) {
  return cluster::FleetSpec::racks(1)
      .nodes_per_rack(4)
      .with_machine(base)
      .with_cooling(1.0, 0.55)
      .with_injection_gradient(p_base)
      .with_load(load_rps)
      // At 1800 rps the default 50 ms telemetry lets ~90 arrivals herd onto
      // one "coolest" node between refreshes; 10 ms keeps greedy policies
      // honest.
      .with_telemetry(sim::from_ms(10))
      .with_policy(policy, 0.25)
      .for_duration(sim::from_sec(20))
      .build();
}

}  // namespace

int main() {
  std::printf("=== Figure 7: cluster routing policy vs injection & load ===\n");

  sched::MachineConfig base;
  base.enable_meter = false;

  const cluster::PolicyKind kPolicies[] = {
      cluster::PolicyKind::kRoundRobin,
      cluster::PolicyKind::kLeastOutstanding,
      cluster::PolicyKind::kCoolestNode,
      cluster::PolicyKind::kInjectionAware,
  };
  const double kPBase[] = {0.0, 0.3, 0.6};
  const double kLoads[] = {600.0, 1800.0};

  std::vector<runner::RunSpec> specs;
  for (const double load : kLoads) {
    for (const double p : kPBase) {
      for (const auto policy : kPolicies) {
        specs.push_back(
            cluster::to_run_spec(make_point(base, policy, p, load)));
      }
    }
  }

  runner::SweepEngine engine = bench::make_engine(base, "fig7_cluster_routing");
  const auto records = bench::run_all_or_die(engine, specs);

  trace::CsvWriter csv(
      bench::csv_path("fig7_cluster_routing.csv"),
      {"policy", "p_base", "load_rps", "offered", "completed",
       "throughput_rps", "p50_s", "p95_s", "p99_s", "good_pct",
       "fleet_peak_sensor_c", "fleet_peak_exact_c", "fleet_mean_sensor_c",
       "drains"});
  trace::Table table({"policy", "p", "load", "thr(rps)", "p50(s)", "p95(s)",
                      "p99(s)", "good%", "peak C", "mean C"});

  // peak exact temp per (load, p_base, policy) for the summary.
  std::map<std::pair<double, double>, std::map<std::string, double>> peaks;

  std::size_t idx = 0;
  for (const double load : kLoads) {
    for (const double p : kPBase) {
      for ([[maybe_unused]] const auto policy : kPolicies) {
        const runner::RunRecord& rec = records.at(idx++);
        const harness::RunResult& r = rec.result;
        const auto& qos = *r.qos;
        const double peak = rec.metric("fleet_peak_exact_c");
        peaks[{load, p}][r.label] = peak;
        csv.write_row(std::vector<std::string>{
            r.label, trace::fmt("%.2f", p), trace::fmt("%.0f", load),
            trace::fmt("%.0f", rec.metric("offered")),
            trace::fmt("%.0f", rec.metric("completed")),
            trace::fmt("%.10g", r.throughput),
            trace::fmt("%.10g", qos.p50_latency_s),
            trace::fmt("%.10g", qos.p95_latency_s),
            trace::fmt("%.10g", qos.p99_latency_s),
            trace::fmt("%.10g", 100 * qos.good_fraction()),
            trace::fmt("%.10g", rec.metric("fleet_peak_sensor_c")),
            trace::fmt("%.10g", peak),
            trace::fmt("%.10g", rec.metric("fleet_mean_sensor_c")),
            trace::fmt("%.0f", rec.metric("drains"))});
        table.add_row({r.label, trace::fmt("%.2f", p), trace::fmt("%.0f", load),
                       trace::fmt("%7.1f", r.throughput),
                       trace::fmt("%.4f", qos.p50_latency_s),
                       trace::fmt("%.4f", qos.p95_latency_s),
                       trace::fmt("%.4f", qos.p99_latency_s),
                       trace::fmt("%5.1f", 100 * qos.good_fraction()),
                       trace::fmt("%6.2f", peak),
                       trace::fmt("%6.2f", rec.metric("fleet_mean_sensor_c"))});
      }
    }
  }
  table.print(std::cout);

  std::printf("\npeak-temperature reduction vs round-robin (exact die C):\n");
  for (const auto& [key, by_policy] : peaks) {
    const double rr = by_policy.at("round-robin");
    std::printf("  load %4.0f rps, p_base %.2f: coolest-node %+.2f C, "
                "injection-aware %+.2f C, least-outstanding %+.2f C\n",
                key.first, key.second, by_policy.at("coolest-node") - rr,
                by_policy.at("injection-aware") - rr,
                by_policy.at("least-outstanding") - rr);
  }
  std::printf("\nwrote %s\n", bench::csv_path("fig7_cluster_routing.csv").c_str());
  return 0;
}
