#pragma once

// Shared plumbing for the per-figure/per-table reproduction binaries.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/pareto.hpp"
#include "harness/experiment.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"

namespace dimetrodon::bench {

/// Directory CSV artifacts are written to (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name;
}

/// One measured sweep entry: configuration label + trade-off vs baseline.
struct SweepPoint {
  std::string label;
  harness::Tradeoff tradeoff;
  harness::RunResult run;
};

inline analysis::TradeoffPoint to_tradeoff_point(const SweepPoint& p) {
  return analysis::TradeoffPoint{p.tradeoff.temp_reduction,
                                 p.tradeoff.throughput_retained, p.label};
}

/// Render a sweep as the trade-off table the paper's figures plot.
inline void print_sweep(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  std::printf("\n%s\n", title.c_str());
  trace::Table table({"config", "temp_red_%", "temp_red_exact_%",
                      "thr_red_%", "efficiency"});
  for (const auto& p : points) {
    table.add_row({p.label, trace::fmt("%6.2f", 100 * p.tradeoff.temp_reduction),
                   trace::fmt("%6.2f", 100 * p.tradeoff.temp_reduction_exact),
                   trace::fmt("%6.2f", 100 * p.tradeoff.throughput_reduction),
                   trace::fmt("%5.2f", p.tradeoff.efficiency)});
  }
  table.print(std::cout);
}

/// Mark pareto-frontier members (the "darkened" boundary of Figs. 4-6).
inline std::vector<std::string> pareto_labels(
    const std::vector<SweepPoint>& points) {
  std::vector<analysis::TradeoffPoint> tps;
  tps.reserve(points.size());
  for (const auto& p : points) tps.push_back(to_tradeoff_point(p));
  std::vector<std::string> labels;
  for (const auto& tp : analysis::pareto_frontier(tps)) {
    labels.push_back(tp.label);
  }
  return labels;
}

}  // namespace dimetrodon::bench
