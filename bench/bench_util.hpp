#pragma once

// Shared plumbing for the per-figure/per-table reproduction binaries.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/pareto.hpp"
#include "harness/experiment.hpp"
#include "runner/sweep_engine.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"
#include "workload/cpuburn.hpp"
#include "workload/spec.hpp"

namespace dimetrodon::bench {

/// Directory CSV artifacts are written to (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name;
}

/// One measured sweep entry: configuration label + trade-off vs baseline.
struct SweepPoint {
  std::string label;
  harness::Tradeoff tradeoff;
  harness::RunResult run;
};

inline analysis::TradeoffPoint to_tradeoff_point(const SweepPoint& p) {
  return analysis::TradeoffPoint{p.tradeoff.temp_reduction,
                                 p.tradeoff.throughput_retained, p.label};
}

/// Render a sweep as the trade-off table the paper's figures plot.
inline void print_sweep(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  std::printf("\n%s\n", title.c_str());
  trace::Table table({"config", "temp_red_%", "temp_red_exact_%",
                      "thr_red_%", "efficiency"});
  for (const auto& p : points) {
    table.add_row({p.label, trace::fmt("%6.2f", 100 * p.tradeoff.temp_reduction),
                   trace::fmt("%6.2f", 100 * p.tradeoff.temp_reduction_exact),
                   trace::fmt("%6.2f", 100 * p.tradeoff.throughput_reduction),
                   trace::fmt("%5.2f", p.tradeoff.efficiency)});
  }
  table.print(std::cout);
}

/// Mark pareto-frontier members (the "darkened" boundary of Figs. 4-6).
inline std::vector<std::string> pareto_labels(
    const std::vector<SweepPoint>& points) {
  std::vector<analysis::TradeoffPoint> tps;
  tps.reserve(points.size());
  for (const auto& p : points) tps.push_back(to_tradeoff_point(p));
  std::vector<std::string> labels;
  for (const auto& tp : analysis::pareto_frontier(tps)) {
    labels.push_back(tp.label);
  }
  return labels;
}

// --- sweep-engine plumbing --------------------------------------------------
// All grid-shaped benches execute through one runner::SweepEngine: points run
// on a work-stealing pool (DIMETRODON_SWEEP_THREADS, default all cores) and
// completed points are replayed from bench_results/cache/ on re-runs
// (DIMETRODON_SWEEP_CACHE=0 disables). Progress goes to stderr; a metrics
// JSON lands next to the bench's CSV.

/// Engine over `cfg` with env-tunable parallelism/caching; `bench_name`
/// names the metrics JSON (bench_results/<bench_name>_metrics.json).
inline runner::SweepEngine make_engine(const sched::MachineConfig& cfg,
                                       const std::string& bench_name) {
  results_dir();  // the metrics JSON needs the directory to exist
  return runner::SweepEngine(cfg,
                             runner::SweepEngineConfig::from_env(bench_name));
}

/// `cfg` with a shared ring-buffer trace sink attached (src/obs): every
/// machine built from the returned config emits structured events into
/// `sink`. Trace runs must bypass the result cache — a cached replay never
/// constructs a machine, so nothing would be traced.
inline sched::MachineConfig with_trace(
    sched::MachineConfig cfg, std::shared_ptr<obs::RingBufferSink> sink) {
  cfg.trace_sink_factory = [sink]() { return sink; };
  return cfg;
}

/// Workload factory + stable cache key for an n-instance cpuburn fleet.
inline harness::ExperimentRunner::WorkloadFactory cpuburn_fleet(int n) {
  return [n] { return std::make_unique<workload::CpuBurnFleet>(n); };
}
inline std::string cpuburn_key(int n) {
  return "cpuburn:" + std::to_string(n);
}

/// Factory + key for an n-instance SPEC CPU2006 fleet ("cpuburn" maps to the
/// cpuburn fleet so Table-1-style loops can treat all rows uniformly).
inline harness::ExperimentRunner::WorkloadFactory workload_fleet(
    const std::string& name, int n) {
  if (name == "cpuburn") return cpuburn_fleet(n);
  const auto profile = *workload::find_spec_profile(name);
  return [profile, n] {
    return std::make_unique<workload::SpecFleet>(profile, n);
  };
}
inline std::string workload_key(const std::string& name, int n) {
  return name == "cpuburn" ? cpuburn_key(n)
                           : "spec:" + name + ":" + std::to_string(n);
}

/// Measured-run spec under `cfg`. The seed defaults to the machine's own, so
/// an engine sweep is bit-identical to the serial ExperimentRunner loop it
/// replaces.
inline runner::RunSpec measure_spec(
    const sched::MachineConfig& cfg, std::string key,
    harness::ExperimentRunner::WorkloadFactory factory,
    runner::ActuationSpec actuation,
    harness::MeasurementConfig mc = harness::MeasurementConfig{}) {
  runner::RunSpec spec;
  spec.workload_key = std::move(key);
  spec.workload = std::move(factory);
  spec.actuation = actuation;
  spec.measurement = mc;
  spec.seed = cfg.seed;
  return spec;
}

/// Measured-run spec with a per-run machine override (C-state, scheduler,
/// and injection-semantics ablations).
inline runner::RunSpec measure_spec_on(
    sched::MachineConfig machine, std::string key,
    harness::ExperimentRunner::WorkloadFactory factory,
    runner::ActuationSpec actuation,
    harness::MeasurementConfig mc = harness::MeasurementConfig{}) {
  runner::RunSpec spec = measure_spec(machine, std::move(key),
                                      std::move(factory), actuation, mc);
  spec.machine = std::move(machine);
  return spec;
}

/// Custom-run spec: `tag` is the run's cache identity (it must encode every
/// parameter the function closes over), `fn` receives the machine config with
/// the spec's seed already applied. Benches that want the engine's execution
/// context (shared pool / lanes hint — fleet benches) pass a 3-arg function
/// via the overload below; this 2-arg form ignores the context.
inline runner::RunSpec custom_spec(
    const sched::MachineConfig& cfg, std::string tag,
    std::function<runner::RunRecord(const runner::RunSpec&,
                                    const sched::MachineConfig&)>
        fn) {
  runner::RunSpec spec;
  spec.kind = runner::RunSpec::Kind::kCustom;
  spec.custom_tag = std::move(tag);
  spec.custom = [fn = std::move(fn)](const runner::RunSpec& s,
                                     const sched::MachineConfig& mc,
                                     const runner::RunContext&) {
    return fn(s, mc);
  };
  spec.seed = cfg.seed;
  return spec;
}

/// Context-aware overload: `fn` additionally receives the RunContext so a
/// custom run can fan nested work onto the engine's pool.
inline runner::RunSpec custom_spec_ctx(
    const sched::MachineConfig& cfg, std::string tag,
    std::function<runner::RunRecord(const runner::RunSpec&,
                                    const sched::MachineConfig&,
                                    const runner::RunContext&)>
        fn) {
  runner::RunSpec spec;
  spec.kind = runner::RunSpec::Kind::kCustom;
  spec.custom_tag = std::move(tag);
  spec.custom = std::move(fn);
  spec.seed = cfg.seed;
  return spec;
}

/// Lookup in a record's extras with a fallback instead of dying: benches
/// whose grids mix governed and open-loop cells (fig8) — or older figures
/// adopting the stability columns (fig6/fig7) — read metrics that only
/// governed runs produce.
inline double metric_or(const runner::RunRecord& rec, const std::string& key,
                        double fallback) {
  for (const auto& [k, v] : rec.extra) {
    if (k == key) return v;
  }
  return fallback;
}

// --- control-stability columns ----------------------------------------------
// Every cluster record (and any custom record that adopts the same extra
// names) carries the src/control stability metrics; these helpers give all
// figure CSVs the same column block so plots can be joined across benches.

/// Header names for the per-cell stability metric columns.
inline std::vector<std::string> stability_columns() {
  return {"duty_reversals", "osc_amp_duty", "osc_amp_temp_c", "overshoot_c",
          "settling_s"};
}

/// Values matching stability_columns(), formatted for CSV. Open-loop cells
/// (no governed node) render as zeros with settling_s = -1, same as the
/// in-memory StabilityMetrics defaults.
inline std::vector<std::string> stability_values(
    const runner::RunRecord& rec) {
  return {trace::fmt("%.0f", metric_or(rec, "duty_reversals", 0.0)),
          trace::fmt("%.10g", metric_or(rec, "osc_amp_duty", 0.0)),
          trace::fmt("%.10g", metric_or(rec, "osc_amp_temp_c", 0.0)),
          trace::fmt("%.10g", metric_or(rec, "overshoot_c", 0.0)),
          trace::fmt("%.10g", metric_or(rec, "settling_s", -1.0))};
}

/// Run the grid and exit with a readable report if any point failed: a
/// figure or table must never be drawn from a partial grid, and the
/// structured RunErrors (also in the bench's *_metrics.json) say exactly
/// which configs to fix before re-running — every completed point is already
/// cached, so the re-run only repeats the failures.
inline std::vector<runner::RunRecord> run_all_or_die(
    runner::SweepEngine& engine, const std::vector<runner::RunSpec>& specs) {
  runner::SweepResult sweep = engine.run(specs);
  if (!sweep.all_ok()) {
    std::fprintf(stderr, "[bench] aborting: %zu of %zu runs failed\n",
                 sweep.errors.size(), sweep.size());
    for (const auto& e : sweep.errors) {
      std::fprintf(stderr, "[bench]   #%zu %s (seed=%llx): %s\n",
                   e.spec_index, e.spec_label.c_str(),
                   static_cast<unsigned long long>(e.seed), e.what.c_str());
    }
    std::exit(1);
  }
  return std::move(sweep.records);
}

/// A baseline-plus-grid sweep executed in one engine pass: specs[0] is the
/// unconstrained baseline and every later spec becomes a SweepPoint with its
/// trade-off computed against it — the loop fig3/fig4/table1 each hand-rolled.
struct MeasuredSweep {
  harness::RunResult baseline;
  std::vector<SweepPoint> points;
};

inline MeasuredSweep run_measured_sweep(runner::SweepEngine& engine,
                                        std::vector<runner::RunSpec> specs) {
  const auto records = run_all_or_die(engine, specs);
  MeasuredSweep out;
  out.baseline = records.at(0).result;
  out.points.reserve(records.size() - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    const auto& run = records[i].result;
    out.points.push_back(SweepPoint{
        run.label, harness::compute_tradeoff(out.baseline, run), run});
  }
  return out;
}

}  // namespace dimetrodon::bench
