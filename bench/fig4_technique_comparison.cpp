// Figure 4: wide-range parameter sweeps of Dimetrodon compared to voltage
// and frequency scaling (VFS) and p4tcc clock-duty throttling, with the
// pareto boundary marked. Shapes to reproduce: Dimetrodon wins for small
// temperature reductions (short quanta), VFS wins beyond roughly 30%
// (quadratic voltage benefit), and p4tcc fails to reach even 1:1 at high
// reductions.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

int main() {
  std::printf("=== Figure 4: Dimetrodon vs VFS vs p4tcc (cpuburn) ===\n");
  sched::MachineConfig cfg;
  auto engine = bench::make_engine(cfg, "fig4_technique_comparison");

  // One grid, three technique families: baseline first, then Dimetrodon,
  // the VFS ladder, and the p4tcc duty steps.
  std::vector<runner::RunSpec> specs;
  const auto add = [&](runner::ActuationSpec act) {
    specs.push_back(bench::measure_spec(cfg, bench::cpuburn_key(4),
                                        bench::cpuburn_fleet(4), act));
  };
  add(runner::ActuationSpec::none());
  std::size_t num_dim = 0;
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    for (const double l : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
      add(runner::ActuationSpec::global(p, sim::from_ms(l)));
      ++num_dim;
    }
  }
  std::size_t num_vfs = 0;
  for (std::size_t level = 1; level < cfg.dvfs.num_levels(); ++level) {
    add(runner::ActuationSpec::vfs(level));
    ++num_vfs;
  }
  for (std::size_t step = 7; step >= 2; --step) {
    add(runner::ActuationSpec::tcc(step));
  }

  const auto sweep = bench::run_measured_sweep(engine, std::move(specs));
  const auto dim_points = std::vector<bench::SweepPoint>(
      sweep.points.begin(), sweep.points.begin() + num_dim);
  const auto vfs_points = std::vector<bench::SweepPoint>(
      sweep.points.begin() + num_dim,
      sweep.points.begin() + num_dim + num_vfs);
  const auto tcc_points = std::vector<bench::SweepPoint>(
      sweep.points.begin() + num_dim + num_vfs, sweep.points.end());

  trace::CsvWriter csv(bench::csv_path("fig4_technique_comparison.csv"),
                       {"technique", "config", "temp_reduction",
                        "throughput_reduction", "efficiency", "on_pareto"});

  // Joint pareto boundary across all techniques (the darkened curve).
  const auto frontier = bench::pareto_labels(sweep.points);
  const auto on_frontier = [&](const std::string& label) {
    for (const auto& f : frontier) {
      if (f == label) return true;
    }
    return false;
  };

  for (const auto* group : {&dim_points, &vfs_points, &tcc_points}) {
    for (const auto& pt : *group) {
      const char* technique = group == &dim_points ? "dimetrodon"
                              : group == &vfs_points ? "vfs"
                                                     : "p4tcc";
      csv.write_row({technique, pt.label,
                     trace::fmt("%.6f", pt.tradeoff.temp_reduction),
                     trace::fmt("%.6f", pt.tradeoff.throughput_reduction),
                     trace::fmt("%.4f", pt.tradeoff.efficiency),
                     on_frontier(pt.label) ? "1" : "0"});
    }
  }

  bench::print_sweep("Dimetrodon sweep:", dim_points);
  bench::print_sweep("VFS ladder:", vfs_points);
  bench::print_sweep("p4tcc duty steps:", tcc_points);

  std::printf("\njoint pareto boundary (darkened in the paper's figure):\n");
  for (const auto& label : frontier) std::printf("  %s\n", label.c_str());

  // Crossover analysis: best technique per temperature-reduction band.
  std::printf("\nbest technique by temperature-reduction band:\n");
  for (double lo = 0.0; lo < 0.9; lo += 0.1) {
    const double hi = lo + 0.1;
    const bench::SweepPoint* best = nullptr;
    const char* best_tech = "";
    for (const auto* group : {&dim_points, &vfs_points, &tcc_points}) {
      for (const auto& pt : *group) {
        if (pt.tradeoff.temp_reduction < lo ||
            pt.tradeoff.temp_reduction >= hi) {
          continue;
        }
        if (best == nullptr || pt.tradeoff.throughput_retained >
                                   best->tradeoff.throughput_retained) {
          best = &pt;
          best_tech = group == &dim_points ? "dimetrodon"
                      : group == &vfs_points ? "vfs"
                                             : "p4tcc";
        }
      }
    }
    if (best != nullptr) {
      std::printf("  r in [%2.0f%%, %2.0f%%): %-10s (%s, keeps %.1f%% "
                  "throughput)\n",
                  100 * lo, 100 * hi, best_tech, best->label.c_str(),
                  100 * best->tradeoff.throughput_retained);
    }
  }
  std::printf("\npaper anchors: Dimetrodon best up to ~30%% reductions; VFS "
              "best beyond (e.g. 30%% throughput -> ~50%% temperature); "
              "p4tcc below 1:1 at high reductions.\n");
  std::printf("CSV: %s\n",
              bench::csv_path("fig4_technique_comparison.csv").c_str());
  return 0;
}
