// Figure 6: QoS and temperature reductions for the web-serving workload.
// SPECWeb-style closed loop, 440 connections, ~15-25% per-core load, ~6 C
// unconstrained rise. Relative QoS under both the "good" (<=3 s) and
// "tolerable" (<=5 s) thresholds versus temperature reduction over idle.
// Paper anchors: up to ~20% temperature reduction with virtually no
// "tolerable" QoS drop; "good" stays >= 1:1 until ~30%, then collapses.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "workload/web.hpp"

using namespace dimetrodon;

namespace {

struct WebRun {
  double avg_temp = 0.0;
  double idle_temp = 0.0;
  workload::WebWorkload::QosStats qos;
};

WebRun run_config(double p, sim::SimTime quantum) {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  sched::Machine machine(cfg);
  WebRun out;
  out.idle_temp = machine.mean_sensor_temp();
  core::DimetrodonController ctl(machine);
  if (p > 0.0) ctl.sys_set_global(p, quantum);
  workload::WebWorkload web;
  web.deploy(machine);
  for (int i = 0; i < 3; ++i) {
    machine.mark_power_window();
    machine.run_for(sim::from_sec(8));
    machine.jump_to_average_power_steady_state();
  }
  machine.run_for(sim::from_sec(3));
  web.mark();
  analysis::OnlineStats temp;
  for (int s = 0; s < 60; ++s) {
    machine.run_for(sim::kSecond);
    temp.add(machine.mean_sensor_temp());
  }
  out.avg_temp = temp.mean();
  out.qos = web.stats_since_mark();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 6: web workload QoS vs temperature reduction ===\n");
  const WebRun base = run_config(0.0, 0);
  const double base_rise = base.avg_temp - base.idle_temp;
  std::printf("unconstrained: rise %.1f C over idle (paper: ~6 C), %llu "
              "requests served, good %.1f%%, tolerable %.1f%%\n",
              base_rise,
              static_cast<unsigned long long>(base.qos.total),
              100 * base.qos.good_fraction(),
              100 * base.qos.tolerable_fraction());

  const std::vector<std::pair<double, double>> settings = {
      {0.25, 10},  {0.5, 10},  {0.75, 10},  {0.9, 10},
      {0.5, 50},   {0.75, 50}, {0.9, 50},   {0.5, 100},
      {0.75, 100}, {0.9, 100}, {0.94, 100}, {0.97, 100},
  };

  trace::CsvWriter csv(bench::csv_path("fig6_web_qos.csv"),
                       {"p", "L_ms", "temp_reduction_pct", "good_rel_pct",
                        "tolerable_rel_pct", "mean_latency_s", "served"});
  trace::Table table({"p", "L(ms)", "temp_red(%)", "good QoS(%)",
                      "tolerable QoS(%)", "mean lat(s)"});
  std::vector<analysis::TradeoffPoint> good_pts;
  std::vector<analysis::TradeoffPoint> tol_pts;
  for (const auto& [p, l] : settings) {
    const WebRun r = run_config(p, sim::from_ms(l));
    const double red = (base.avg_temp - r.avg_temp) / base_rise;
    const double rel_good = r.qos.good_fraction() / base.qos.good_fraction();
    const double rel_tol =
        r.qos.tolerable_fraction() / base.qos.tolerable_fraction();
    table.add_row({trace::fmt("%.2f", p), trace::fmt("%.0f", l),
                   trace::fmt("%5.1f", 100 * red),
                   trace::fmt("%5.1f", 100 * rel_good),
                   trace::fmt("%5.1f", 100 * rel_tol),
                   trace::fmt("%.3f", r.qos.mean_latency_s)});
    csv.write_row(std::vector<double>{
        p, l, 100 * red, 100 * rel_good, 100 * rel_tol,
        r.qos.mean_latency_s, static_cast<double>(r.qos.total)});
    good_pts.push_back(analysis::TradeoffPoint{
        red, rel_good, trace::fmt("p=%.2f L=%.0f", p, l)});
    tol_pts.push_back(analysis::TradeoffPoint{
        red, rel_tol, trace::fmt("p=%.2f L=%.0f", p, l)});
  }
  table.print(std::cout);

  std::printf("\npareto boundaries:\n");
  for (const auto& f : analysis::pareto_frontier(good_pts)) {
    std::printf("  [good]      r=%5.1f%% QoS %5.1f%% (%s)\n",
                100 * f.temp_reduction, 100 * f.performance_retained,
                f.label.c_str());
  }
  for (const auto& f : analysis::pareto_frontier(tol_pts)) {
    std::printf("  [tolerable] r=%5.1f%% QoS %5.1f%% (%s)\n",
                100 * f.temp_reduction, 100 * f.performance_retained,
                f.label.c_str());
  }
  std::printf("\npaper anchors: 'tolerable' ~flat to 20%% reductions and "
              "beyond; 'good' at least 1:1 until ~30%% then falls quickly; "
              "shorter quanta more efficient.\n");
  std::printf("CSV: %s\n", bench::csv_path("fig6_web_qos.csv").c_str());
  return 0;
}
