// Ablation benches for the design choices DESIGN.md calls out (not figures
// from the paper, but its explicit side remarks and our extensions):
//  (1) Bernoulli vs deterministic (stratified) injection — the paper: "a
//      more deterministic model would likely result in smoother curves".
//  (2) Idle C-state depth: C1E (voltage-lowering) vs C1 (clock gate only).
//  (3) Injection semantics: per-thread suspension vs literal idle-the-core.
//  (4) Closed-loop adaptive temperature capping (extension).
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

/// (1) Steady-state temperature statistics under one injection policy.
runner::RunSpec policy_spec(const sched::MachineConfig& base, bool stratified) {
  sched::MachineConfig mcfg = base;
  mcfg.enable_meter = false;
  auto spec = bench::custom_spec(
      base, trace::fmt("ablation-policy[stratified=%d]", stratified ? 1 : 0),
      [stratified](const runner::RunSpec&, const sched::MachineConfig& cfg) {
        sched::Machine machine(cfg);
        std::unique_ptr<core::InjectionPolicy> policy;
        if (stratified) policy = std::make_unique<core::StratifiedInjection>();
        core::DimetrodonController ctl(machine, std::move(policy));
        ctl.sys_set_global(0.5, sim::from_ms(50));
        workload::CpuBurnFleet fleet(4);
        fleet.deploy(machine);
        for (int i = 0; i < 4; ++i) {
          machine.mark_power_window();
          machine.run_for(sim::from_sec(8));
          machine.jump_to_average_power_steady_state();
        }
        analysis::OnlineStats temp;
        const double w0 = fleet.progress(machine);
        for (int s = 0; s < 60; ++s) {
          machine.run_for(sim::kSecond);
          temp.add(machine.mean_sensor_temp());
        }
        runner::RunRecord rec;
        rec.extra = {{"mean_temp", temp.mean()},
                     {"stddev_temp", temp.stddev()},
                     {"throughput", (fleet.progress(machine) - w0) / 60.0},
                     {"observed_rate", ctl.observed_injection_rate()},
                     {"sim_seconds", sim::to_sec(machine.now())}};
        return rec;
      });
  spec.machine = std::move(mcfg);
  return spec;
}

/// (4) Closed-loop capping: hold the sensor temperature at `target`.
runner::RunSpec adaptive_spec(const sched::MachineConfig& base, double target) {
  sched::MachineConfig mcfg = base;
  mcfg.enable_meter = false;
  auto spec = bench::custom_spec(
      base, trace::fmt("ablation-adaptive[target=%a]", target),
      [target](const runner::RunSpec&, const sched::MachineConfig& cfg) {
        sched::Machine machine(cfg);
        core::DimetrodonController ctl(machine);
        core::AdaptiveController::Config acfg;
        acfg.target_temp_c = target;
        core::AdaptiveController adaptive(machine, ctl, acfg);
        workload::CpuBurnFleet fleet(4);
        fleet.deploy(machine);
        for (int i = 0; i < 4; ++i) {
          machine.mark_power_window();
          machine.run_for(sim::from_sec(10));
          machine.jump_to_average_power_steady_state();
        }
        analysis::OnlineStats temp;
        for (int s = 0; s < 30; ++s) {
          machine.run_for(sim::kSecond);
          temp.add(machine.mean_sensor_temp());
        }
        runner::RunRecord rec;
        rec.extra = {{"mean_temp", temp.mean()},
                     {"stddev_temp", temp.stddev()},
                     {"probability", adaptive.current_probability()},
                     {"sim_seconds", sim::to_sec(machine.now())}};
        return rec;
      });
  spec.machine = std::move(mcfg);
  return spec;
}

/// (6) Crippled cooling: ride PROCHOT, or prevent it with injection.
runner::RunSpec prochot_spec(const sched::MachineConfig& base, bool inject) {
  sched::MachineConfig mcfg = base;
  mcfg.enable_meter = false;
  mcfg.floorplan.fan_speed_fraction = 0.4;
  auto spec = bench::custom_spec(
      base, trace::fmt("ablation-prochot[inject=%d]", inject ? 1 : 0),
      [inject](const runner::RunSpec&, const sched::MachineConfig& cfg) {
        sched::Machine machine(cfg);
        core::DimetrodonController ctl(machine);
        if (inject) ctl.sys_set_global(0.85, sim::from_ms(25));
        workload::CpuBurnFleet fleet(4);
        fleet.deploy(machine);
        for (int i = 0; i < 5; ++i) {
          machine.mark_power_window();
          machine.run_for(sim::from_sec(8));
          machine.jump_to_average_power_steady_state();
        }
        const double w0 = fleet.progress(machine);
        machine.run_for(sim::from_sec(10));
        runner::RunRecord rec;
        rec.extra = {
            {"mean_temp", machine.mean_sensor_temp()},
            {"throughput", (fleet.progress(machine) - w0) / 10.0},
            {"prochot",
             static_cast<double>(machine.thermal_throttle_engagements())},
            {"sim_seconds", sim::to_sec(machine.now())}};
        return rec;
      });
  spec.machine = std::move(mcfg);
  return spec;
}

/// Appends a baseline + injected-run pair on a machine-config variant;
/// sections (2)/(3)/(5) consume the records pairwise.
void add_pair(std::vector<runner::RunSpec>& specs, sched::MachineConfig mcfg,
              double p, sim::SimTime quantum) {
  specs.push_back(bench::measure_spec_on(mcfg, bench::cpuburn_key(4),
                                         bench::cpuburn_fleet(4),
                                         runner::ActuationSpec::none()));
  specs.push_back(bench::measure_spec_on(
      mcfg, bench::cpuburn_key(4), bench::cpuburn_fleet(4),
      runner::ActuationSpec::global(p, quantum)));
}

}  // namespace

int main() {
  std::printf("=== Ablations ===\n");
  sched::MachineConfig cfg;
  auto engine = bench::make_engine(cfg, "ablation_injection");

  // The whole ablation suite is one engine grid; each section then reads its
  // records back in submission order.
  std::vector<runner::RunSpec> specs;
  for (const bool stratified : {false, true}) {  // (1)
    specs.push_back(policy_spec(cfg, stratified));
  }
  for (const power::CState cstate :
       {power::CState::kC1, power::CState::kC1E}) {  // (2)
    sched::MachineConfig mcfg = cfg;
    mcfg.idle_cstate = cstate;
    add_pair(specs, mcfg, 0.5, sim::from_ms(10));
  }
  for (const bool suspend : {true, false}) {  // (3)
    sched::MachineConfig mcfg = cfg;
    mcfg.injection_suspends_thread = suspend;
    add_pair(specs, mcfg, 0.5, sim::from_ms(25));
  }
  for (const double target : {48.0, 52.0, 56.0}) {  // (4)
    specs.push_back(adaptive_spec(cfg, target));
  }
  for (const auto kind :
       {sched::SchedulerKind::kBsd, sched::SchedulerKind::kUle}) {  // (5)
    sched::MachineConfig mcfg = cfg;
    mcfg.scheduler_kind = kind;
    add_pair(specs, mcfg, 0.5, sim::from_ms(25));
  }
  for (const bool inject : {false, true}) {  // (6)
    specs.push_back(prochot_spec(cfg, inject));
  }
  const auto records = bench::run_all_or_die(engine, specs);
  std::size_t next_record = 0;

  // (1) Bernoulli vs stratified: same duty, temperature variance and
  // trade-off compared. Variance computed over 1 Hz sensor samples.
  std::printf("\n-- (1) Bernoulli vs deterministic injection (p=0.5, "
              "L=50 ms) --\n");
  for (const bool stratified : {false, true}) {
    const auto& r = records.at(next_record++);
    std::printf("  %-12s mean temp %.2f C, stddev %.3f C, throughput %.3f, "
                "observed rate %.3f\n",
                stratified ? "stratified" : "bernoulli", r.metric("mean_temp"),
                r.metric("stddev_temp"), r.metric("throughput"),
                r.metric("observed_rate"));
  }
  std::printf("  expectation: identical duty; stratified runs cooler-or-equal "
              "with visibly smaller fluctuation (the paper's 'smoother "
              "curves').\n");

  // (2) Idle-state depth.
  std::printf("\n-- (2) idle C-state depth under injection (p=0.5, "
              "L=10 ms) --\n");
  for (const power::CState cstate : {power::CState::kC1, power::CState::kC1E}) {
    const auto& base = records.at(next_record++).result;
    const auto& run = records.at(next_record++).result;
    const auto t = harness::compute_tradeoff(base, run);
    std::printf("  %-4s temp reduction %5.2f%% at %5.2f%% throughput cost "
                "(efficiency %.2f)\n",
                power::cstate_info(cstate).name.data(),
                100 * t.temp_reduction, 100 * t.throughput_reduction,
                t.efficiency);
  }
  std::printf("  expectation: C1E's lower idle voltage cuts leakage during "
              "injected quanta -> better efficiency than C1.\n");

  // (3) Injection semantics (identical here: one thread per core).
  std::printf("\n-- (3) suspension vs literal idle-the-core semantics "
              "(4 threads / 4 cores, p=0.5, L=25 ms) --\n");
  for (const bool suspend : {true, false}) {
    const auto& base = records.at(next_record++).result;
    const auto& run = records.at(next_record++).result;
    const auto t = harness::compute_tradeoff(base, run);
    std::printf("  %-10s temp red %5.2f%%, throughput red %5.2f%%\n",
                suspend ? "suspend" : "idle-core", 100 * t.temp_reduction,
                100 * t.throughput_reduction);
  }
  std::printf("  expectation: indistinguishable when runnable threads <= "
              "cores (every single-workload experiment).\n");

  // (4) Adaptive temperature capping.
  std::printf("\n-- (4) adaptive temperature capping (extension) --\n");
  for (const double target : {48.0, 52.0, 56.0}) {
    const auto& r = records.at(next_record++);
    std::printf("  target %4.1f C -> held %5.2f C (stddev %.2f) at "
                "p=%.3f\n",
                target, r.metric("mean_temp"), r.metric("stddev_temp"),
                r.metric("probability"));
  }
  std::printf("  expectation: sensor temperature tracks each target; hotter "
              "targets need smaller p.\n");

  // (5) Scheduler generalization: the mechanism under 4.4BSD vs ULE.
  std::printf("\n-- (5) scheduler generalization: 4.4BSD vs ULE (p=0.5, "
              "L=25 ms) --\n");
  for (const auto kind :
       {sched::SchedulerKind::kBsd, sched::SchedulerKind::kUle}) {
    const auto& base = records.at(next_record++).result;
    const auto& run = records.at(next_record++).result;
    const auto t = harness::compute_tradeoff(base, run);
    std::printf("  %-7s temp red %5.2f%%, throughput red %5.2f%%, "
                "efficiency %.2f\n",
                kind == sched::SchedulerKind::kBsd ? "4.4BSD" : "ULE",
                100 * t.temp_reduction, 100 * t.throughput_reduction,
                t.efficiency);
  }
  std::printf("  expectation: near-identical trade-offs — the mechanism "
              "\"generalizes to ULE and other schedulers\" (paper fn. 2).\n");

  // (6) Preventive management vs the worst-case hardware safety net.
  std::printf("\n-- (6) Dimetrodon vs PROCHOT under crippled cooling "
              "(fan at 40%%) --\n");
  for (const bool inject : {false, true}) {
    const auto& r = records.at(next_record++);
    std::printf("  %-14s temp %5.1f C, throughput %.2f w/s, PROCHOT "
                "engagements %llu\n",
                inject ? "dimetrodon" : "unconstrained", r.metric("mean_temp"),
                r.metric("throughput"),
                static_cast<unsigned long long>(r.metric("prochot")));
  }
  std::printf("  expectation: unconstrained execution rides the hardware "
              "throttle (reactive, worst-case DTM); preventive injection "
              "keeps the machine below the emergency threshold entirely "
              "(the paper's §1 framing).\n");
  return 0;
}
