// Ablation benches for the design choices DESIGN.md calls out (not figures
// from the paper, but its explicit side remarks and our extensions):
//  (1) Bernoulli vs deterministic (stratified) injection — the paper: "a
//      more deterministic model would likely result in smoother curves".
//  (2) Idle C-state depth: C1E (voltage-lowering) vs C1 (clock gate only).
//  (3) Injection semantics: per-thread suspension vs literal idle-the-core.
//  (4) Closed-loop adaptive temperature capping (extension).
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "workload/cpuburn.hpp"

using namespace dimetrodon;

namespace {

harness::ExperimentRunner::WorkloadFactory cpuburn4() {
  return [] { return std::make_unique<workload::CpuBurnFleet>(4); };
}

}  // namespace

int main() {
  std::printf("=== Ablations ===\n");
  sched::MachineConfig cfg;

  // (1) Bernoulli vs stratified: same duty, temperature variance and
  // trade-off compared. Variance computed over 1 Hz sensor samples.
  std::printf("\n-- (1) Bernoulli vs deterministic injection (p=0.5, "
              "L=50 ms) --\n");
  for (const bool stratified : {false, true}) {
    sched::MachineConfig mcfg;
    mcfg.enable_meter = false;
    sched::Machine machine(mcfg);
    std::unique_ptr<core::InjectionPolicy> policy;
    if (stratified) policy = std::make_unique<core::StratifiedInjection>();
    core::DimetrodonController ctl(machine, std::move(policy));
    ctl.sys_set_global(0.5, sim::from_ms(50));
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(machine);
    for (int i = 0; i < 4; ++i) {
      machine.mark_power_window();
      machine.run_for(sim::from_sec(8));
      machine.jump_to_average_power_steady_state();
    }
    analysis::OnlineStats temp;
    const double w0 = fleet.progress(machine);
    for (int s = 0; s < 60; ++s) {
      machine.run_for(sim::kSecond);
      temp.add(machine.mean_sensor_temp());
    }
    std::printf("  %-12s mean temp %.2f C, stddev %.3f C, throughput %.3f, "
                "observed rate %.3f\n",
                stratified ? "stratified" : "bernoulli", temp.mean(),
                temp.stddev(), (fleet.progress(machine) - w0) / 60.0,
                ctl.observed_injection_rate());
  }
  std::printf("  expectation: identical duty; stratified runs cooler-or-equal "
              "with visibly smaller fluctuation (the paper's 'smoother "
              "curves').\n");

  // (2) Idle-state depth.
  std::printf("\n-- (2) idle C-state depth under injection (p=0.5, "
              "L=10 ms) --\n");
  for (const power::CState cstate : {power::CState::kC1, power::CState::kC1E}) {
    sched::MachineConfig mcfg = cfg;
    mcfg.idle_cstate = cstate;
    harness::ExperimentRunner r2(mcfg, harness::MeasurementConfig{});
    const auto base2 = r2.measure(cpuburn4(), harness::no_actuation());
    const auto run = r2.measure(
        cpuburn4(), harness::dimetrodon_global(0.5, sim::from_ms(10)));
    const auto t = harness::compute_tradeoff(base2, run);
    std::printf("  %-4s temp reduction %5.2f%% at %5.2f%% throughput cost "
                "(efficiency %.2f)\n",
                power::cstate_info(cstate).name.data(),
                100 * t.temp_reduction, 100 * t.throughput_reduction,
                t.efficiency);
  }
  std::printf("  expectation: C1E's lower idle voltage cuts leakage during "
              "injected quanta -> better efficiency than C1.\n");

  // (3) Injection semantics (identical here: one thread per core).
  std::printf("\n-- (3) suspension vs literal idle-the-core semantics "
              "(4 threads / 4 cores, p=0.5, L=25 ms) --\n");
  for (const bool suspend : {true, false}) {
    sched::MachineConfig mcfg = cfg;
    mcfg.injection_suspends_thread = suspend;
    harness::ExperimentRunner r3(mcfg, harness::MeasurementConfig{});
    const auto base3 = r3.measure(cpuburn4(), harness::no_actuation());
    const auto run = r3.measure(
        cpuburn4(), harness::dimetrodon_global(0.5, sim::from_ms(25)));
    const auto t = harness::compute_tradeoff(base3, run);
    std::printf("  %-10s temp red %5.2f%%, throughput red %5.2f%%\n",
                suspend ? "suspend" : "idle-core", 100 * t.temp_reduction,
                100 * t.throughput_reduction);
  }
  std::printf("  expectation: indistinguishable when runnable threads <= "
              "cores (every single-workload experiment).\n");

  // (4) Adaptive temperature capping.
  std::printf("\n-- (4) adaptive temperature capping (extension) --\n");
  for (const double target : {48.0, 52.0, 56.0}) {
    sched::MachineConfig mcfg;
    mcfg.enable_meter = false;
    sched::Machine machine(mcfg);
    core::DimetrodonController ctl(machine);
    core::AdaptiveController::Config acfg;
    acfg.target_temp_c = target;
    core::AdaptiveController adaptive(machine, ctl, acfg);
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(machine);
    for (int i = 0; i < 4; ++i) {
      machine.mark_power_window();
      machine.run_for(sim::from_sec(10));
      machine.jump_to_average_power_steady_state();
    }
    analysis::OnlineStats temp;
    for (int s = 0; s < 30; ++s) {
      machine.run_for(sim::kSecond);
      temp.add(machine.mean_sensor_temp());
    }
    std::printf("  target %4.1f C -> held %5.2f C (stddev %.2f) at "
                "p=%.3f\n",
                target, temp.mean(), temp.stddev(),
                adaptive.current_probability());
  }
  std::printf("  expectation: sensor temperature tracks each target; hotter "
              "targets need smaller p.\n");

  // (5) Scheduler generalization: the mechanism under 4.4BSD vs ULE.
  std::printf("\n-- (5) scheduler generalization: 4.4BSD vs ULE (p=0.5, "
              "L=25 ms) --\n");
  for (const auto kind :
       {sched::SchedulerKind::kBsd, sched::SchedulerKind::kUle}) {
    sched::MachineConfig mcfg = cfg;
    mcfg.scheduler_kind = kind;
    harness::ExperimentRunner r5(mcfg, harness::MeasurementConfig{});
    const auto base5 = r5.measure(cpuburn4(), harness::no_actuation());
    const auto run = r5.measure(
        cpuburn4(), harness::dimetrodon_global(0.5, sim::from_ms(25)));
    const auto t = harness::compute_tradeoff(base5, run);
    std::printf("  %-7s temp red %5.2f%%, throughput red %5.2f%%, "
                "efficiency %.2f\n",
                kind == sched::SchedulerKind::kBsd ? "4.4BSD" : "ULE",
                100 * t.temp_reduction, 100 * t.throughput_reduction,
                t.efficiency);
  }
  std::printf("  expectation: near-identical trade-offs — the mechanism "
              "\"generalizes to ULE and other schedulers\" (paper fn. 2).\n");

  // (6) Preventive management vs the worst-case hardware safety net.
  std::printf("\n-- (6) Dimetrodon vs PROCHOT under crippled cooling "
              "(fan at 40%%) --\n");
  for (const bool inject : {false, true}) {
    sched::MachineConfig mcfg;
    mcfg.enable_meter = false;
    mcfg.floorplan.fan_speed_fraction = 0.4;
    sched::Machine machine(mcfg);
    core::DimetrodonController ctl(machine);
    if (inject) ctl.sys_set_global(0.85, sim::from_ms(25));
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(machine);
    for (int i = 0; i < 5; ++i) {
      machine.mark_power_window();
      machine.run_for(sim::from_sec(8));
      machine.jump_to_average_power_steady_state();
    }
    const double w0 = fleet.progress(machine);
    machine.run_for(sim::from_sec(10));
    std::printf("  %-14s temp %5.1f C, throughput %.2f w/s, PROCHOT "
                "engagements %llu\n",
                inject ? "dimetrodon" : "unconstrained",
                machine.mean_sensor_temp(),
                (fleet.progress(machine) - w0) / 10.0,
                static_cast<unsigned long long>(
                    machine.thermal_throttle_engagements()));
  }
  std::printf("  expectation: unconstrained execution rides the hardware "
              "throttle (reactive, worst-case DTM); preventive injection "
              "keeps the machine below the emergency threshold entirely "
              "(the paper's §1 framing).\n");
  return 0;
}
