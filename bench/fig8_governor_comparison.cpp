// Figure 8 (extension): preventive vs reactive head-to-head. The paper's
// Dimetrodon runs open loop — a fixed injection probability provisioned for
// the worst case. This bench pits that baseline against the src/control
// closed-loop governors (threshold, hysteresis, PID, hybrid) on identical
// nodes, across two web workloads x two load levels, at single-node and
// four-node fleet scale, and reports peak temperature, energy, p99 latency
// and the control-stability metrics per cell.
//
// Expected shape, and the two cells the summary asserts:
//   * head-to-head: at high load, the open-loop duty provisioned to cap the
//     worst case over-throttles; a feedback governor holding the same thermal
//     ceiling sheds duty whenever the sensors allow and wins on BOTH peak
//     temperature and p99 in at least one cell.
//   * oscillation: the bare threshold controller (release == trip) flaps
//     around its trip point — the duty_reversals counter shows it — and the
//     3 C hysteresis band suppresses most of that flapping at the same trip
//     temperature.
//
// Governor setpoints sit in the mid-40s C: with fan_speed_fraction 0.5 and
// these web loads the die tops out near 50 C (DESIGN.md section 10), so the
// stock 68-72 C defaults would never engage.
//
// Artifacts: bench_results/fig8_governor_comparison.csv plus
// BENCH_governor.json (override with DIMETRODON_BENCH_JSON) containing every
// cell and the two acceptance verdicts. Both are deterministic byte-for-byte:
// a warm-cache re-run (0 simulations) must reproduce them exactly.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/fleet_spec.hpp"

using namespace dimetrodon;

namespace {

// The open-loop comparator: worst-case provisioning. p = 0.65 is what it
// takes to hold the heavy cells near 50 C peak with no feedback; the
// governors get to spend less duty whenever the sensors say they can.
constexpr double kPreventiveP = 0.65;
constexpr sim::SimTime kQuantum = sim::from_ms(10);

control::GovernorSpec threshold_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 46.0;
  g.hysteresis.release_c = 46.0;  // release == trip: bare threshold, flaps
  g.hysteresis.hot_probability = 0.50;
  return g;
}

control::GovernorSpec hysteresis_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 46.0;
  g.hysteresis.release_c = 43.0;  // 3 C band suppresses the flapping
  g.hysteresis.hot_probability = 0.50;
  return g;
}

control::GovernorSpec pid_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kPid;
  g.pid.setpoint_c = 46.0;
  g.pid.kp = 0.05;
  g.pid.ki = 0.012;
  return g;
}

control::GovernorSpec hybrid_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHybrid;
  g.hybrid.baseline_probability = 0.20;
  g.hybrid.setpoint_c = 46.0;
  g.hybrid.kp = 0.04;
  g.hybrid.ki = 0.01;
  return g;
}

struct Policy {
  const char* name;
  double open_p;                  // open-loop probability (preventive cell)
  control::GovernorSpec governor; // kNone for the preventive cell
};

struct Workload {
  const char* name;
  double demand_mean_s;
};

struct Cell {
  std::string policy;
  std::string workload;
  double per_node_rps = 0.0;
  int nodes = 0;
  double peak_c = 0.0;
  double mean_c = 0.0;
  double energy_j = 0.0;
  double p99_s = 0.0;
  double throughput = 0.0;
  double duty_reversals = 0.0;
  double osc_amp_duty = 0.0;
  double osc_amp_temp_c = 0.0;
  double overshoot_c = 0.0;
  double settling_s = 0.0;
  double trips = 0.0;
};

cluster::ClusterRunSpec make_point(const sched::MachineConfig& base,
                                   const Policy& policy, double demand,
                                   double per_node_rps, int nodes) {
  workload::WebWorkload::Config web = cluster::ClusterConfig::open_loop_web();
  web.demand_mean_s = demand;
  return cluster::FleetSpec::racks(1)
      .nodes_per_rack(static_cast<std::size_t>(nodes))
      .with_machine(base)
      .with_web(web)
      .with_cooling(0.5, 0.5)  // poorly cooled rack: thermal pressure
      .with_injection(policy.open_p, kQuantum)
      .with_governor(policy.governor)
      .with_load(per_node_rps * nodes)
      .with_policy(cluster::PolicyKind::kRoundRobin)
      .for_duration(sim::from_sec(30))
      .build();
}

void put_cell(std::FILE* f, const Cell& c, const char* trailing) {
  std::fprintf(
      f,
      "    {\"policy\": \"%s\", \"workload\": \"%s\", \"per_node_rps\": %.0f, "
      "\"nodes\": %d, \"peak_sensor_c\": %.10g, \"mean_sensor_c\": %.10g, "
      "\"energy_j\": %.10g, \"p99_s\": %.10g, \"throughput_rps\": %.10g, "
      "\"duty_reversals\": %.0f, \"osc_amp_duty\": %.10g, "
      "\"osc_amp_temp_c\": %.10g, \"overshoot_c\": %.10g, "
      "\"settling_s\": %.10g, \"governor_trips\": %.0f}%s\n",
      c.policy.c_str(), c.workload.c_str(), c.per_node_rps, c.nodes, c.peak_c,
      c.mean_c, c.energy_j, c.p99_s, c.throughput, c.duty_reversals,
      c.osc_amp_duty, c.osc_amp_temp_c, c.overshoot_c, c.settling_s, c.trips,
      trailing);
}

}  // namespace

int main() {
  std::printf("=== Figure 8: preventive vs closed-loop governors ===\n");

  sched::MachineConfig base;
  base.enable_meter = false;

  const Policy kPolicies[] = {
      {"preventive", kPreventiveP, {}},
      {"threshold", 0.0, threshold_spec()},
      {"hysteresis", 0.0, hysteresis_spec()},
      {"pid", 0.0, pid_spec()},
      {"hybrid", 0.0, hybrid_spec()},
  };
  const Workload kWorkloads[] = {
      {"web-light", 0.0040},
      {"web-heavy", 0.0060},
  };
  const double kPerNodeLoads[] = {700.0, 900.0};
  const int kScales[] = {1, 4};

  std::vector<runner::RunSpec> specs;
  for (const int nodes : kScales) {
    for (const Workload& wl : kWorkloads) {
      for (const double rps : kPerNodeLoads) {
        for (const Policy& p : kPolicies) {
          specs.push_back(cluster::to_run_spec(
              make_point(base, p, wl.demand_mean_s, rps, nodes)));
        }
      }
    }
  }

  runner::SweepEngine engine =
      bench::make_engine(base, "fig8_governor_comparison");
  const auto records = bench::run_all_or_die(engine, specs);

  std::vector<std::string> header = {
      "policy", "workload", "per_node_rps", "nodes", "throughput_rps",
      "p99_s", "good_pct", "fleet_peak_sensor_c", "fleet_mean_sensor_c",
      "energy_j", "governor_trips"};
  for (const std::string& col : bench::stability_columns()) {
    header.push_back(col);
  }
  trace::CsvWriter csv(bench::csv_path("fig8_governor_comparison.csv"),
                       header);
  trace::Table table({"policy", "workload", "rps/node", "nodes", "thr(rps)",
                      "p99(s)", "peak C", "E(J)", "revs", "trips"});

  std::vector<Cell> cells;
  std::size_t idx = 0;
  for (const int nodes : kScales) {
    for (const Workload& wl : kWorkloads) {
      for (const double rps : kPerNodeLoads) {
        for (const Policy& p : kPolicies) {
          const runner::RunRecord& rec = records.at(idx++);
          const auto& qos = *rec.result.qos;
          Cell c;
          c.policy = p.name;
          c.workload = wl.name;
          c.per_node_rps = rps;
          c.nodes = nodes;
          c.peak_c = rec.metric("fleet_peak_sensor_c");
          c.mean_c = rec.metric("fleet_mean_sensor_c");
          c.energy_j = rec.metric("energy_j");
          c.p99_s = qos.p99_latency_s;
          c.throughput = rec.result.throughput;
          c.duty_reversals = bench::metric_or(rec, "duty_reversals", 0.0);
          c.osc_amp_duty = bench::metric_or(rec, "osc_amp_duty", 0.0);
          c.osc_amp_temp_c = bench::metric_or(rec, "osc_amp_temp_c", 0.0);
          c.overshoot_c = bench::metric_or(rec, "overshoot_c", 0.0);
          c.settling_s = bench::metric_or(rec, "settling_s", -1.0);
          c.trips =
              static_cast<double>(rec.result.counters.governor_trips);
          cells.push_back(c);

          std::vector<std::string> row = {
              c.policy, c.workload, trace::fmt("%.0f", rps),
              trace::fmt("%d", nodes), trace::fmt("%.10g", c.throughput),
              trace::fmt("%.10g", c.p99_s),
              trace::fmt("%.10g", 100 * qos.good_fraction()),
              trace::fmt("%.10g", c.peak_c), trace::fmt("%.10g", c.mean_c),
              trace::fmt("%.10g", c.energy_j), trace::fmt("%.0f", c.trips)};
          for (const std::string& v : bench::stability_values(rec)) {
            row.push_back(v);
          }
          csv.write_row(row);
          table.add_row({c.policy, c.workload, trace::fmt("%.0f", rps),
                         trace::fmt("%d", nodes),
                         trace::fmt("%7.1f", c.throughput),
                         trace::fmt("%.4f", c.p99_s),
                         trace::fmt("%5.1f", c.peak_c),
                         trace::fmt("%6.0f", c.energy_j),
                         trace::fmt("%4.0f", c.duty_reversals),
                         trace::fmt("%4.0f", c.trips)});
        }
      }
    }
  }
  table.print(std::cout);

  // --- acceptance check 1: a feedback governor beats open-loop preventive
  // on peak temperature with equal-or-better p99 in at least one cell.
  struct Win {
    const Cell* governed;
    const Cell* preventive;
  };
  std::vector<Win> wins;
  for (const Cell& g : cells) {
    if (g.policy == "preventive") continue;
    for (const Cell& pv : cells) {
      if (pv.policy != "preventive" || pv.workload != g.workload ||
          pv.per_node_rps != g.per_node_rps || pv.nodes != g.nodes) {
        continue;
      }
      if (g.peak_c < pv.peak_c && g.p99_s <= pv.p99_s) {
        wins.push_back({&g, &pv});
      }
    }
  }

  // --- acceptance check 2: the bare threshold controller oscillates and the
  // hysteresis band suppresses it (fewer duty reversals at the same trip
  // temperature) in at least one cell with measurable flapping.
  struct Suppression {
    const Cell* threshold;
    const Cell* hysteresis;
  };
  std::vector<Suppression> suppressions;
  for (const Cell& t : cells) {
    if (t.policy != "threshold" || t.duty_reversals <= 0.0) continue;
    for (const Cell& h : cells) {
      if (h.policy != "hysteresis" || h.workload != t.workload ||
          h.per_node_rps != t.per_node_rps || h.nodes != t.nodes) {
        continue;
      }
      if (h.duty_reversals < t.duty_reversals) {
        suppressions.push_back({&t, &h});
      }
    }
  }

  std::printf("\nhead-to-head wins (governor beats preventive p=%.2f on peak "
              "temp at equal-or-better p99): %zu\n",
              kPreventiveP, wins.size());
  for (const Win& w : wins) {
    std::printf("  %s @ %s %.0f rps/node x%d: peak %.0f C vs %.0f C, "
                "p99 %.4f s vs %.4f s\n",
                w.governed->policy.c_str(), w.governed->workload.c_str(),
                w.governed->per_node_rps, w.governed->nodes,
                w.governed->peak_c, w.preventive->peak_c, w.governed->p99_s,
                w.preventive->p99_s);
  }
  std::printf("oscillation suppression (hysteresis band vs bare threshold, "
              "duty reversals): %zu cells\n",
              suppressions.size());
  for (const Suppression& s : suppressions) {
    std::printf("  %s %.0f rps/node x%d: threshold %0.f reversals -> "
                "hysteresis %.0f\n",
                s.threshold->workload.c_str(), s.threshold->per_node_rps,
                s.threshold->nodes, s.threshold->duty_reversals,
                s.hysteresis->duty_reversals);
  }

  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string json_path =
      (env != nullptr && *env) ? env : "BENCH_governor.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-governor v1\",\n"
               "  \"preventive_p\": %.2f,\n"
               "  \"cells\": [\n",
               kPreventiveP);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    put_cell(f, cells[i], i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"acceptance\": {\n"
               "    \"head_to_head_wins\": %zu,\n"
               "    \"oscillation_suppression_cells\": %zu\n"
               "  }\n"
               "}\n",
               wins.size(), suppressions.size());
  std::fclose(f);

  std::printf("\nwrote %s and %s\n",
              bench::csv_path("fig8_governor_comparison.csv").c_str(),
              json_path.c_str());

  if (wins.empty() || suppressions.empty()) {
    std::fprintf(stderr,
                 "[bench] acceptance FAILED: head_to_head_wins=%zu "
                 "oscillation_suppression_cells=%zu (both must be > 0)\n",
                 wins.size(), suppressions.size());
    return 1;
  }
  return 0;
}
