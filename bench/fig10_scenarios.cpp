// Figure 10 (extension): serving scenarios under operational stress. The
// scenario engine drives a 12-node fleet (3 racks of 4, CRAC coupling)
// through four stress scripts — arrival-trace replay, fleet churn
// (drain/remove/join), a rolling config update, and a correlated CRAC heat
// wave — crossed with routing policy (round-robin vs injection-aware) and
// control plane (open-loop injection gradient vs closed-loop hysteresis
// governors). Every cell runs through the sweep engine, so the full matrix
// caches, parallelizes and fault-isolates like any other figure.
//
// The replay trace is recorded inline at startup (a plain Poisson run with a
// TraceRecorder attached), saved to bench_results/fig10_trace.dmtrace as an
// artifact, and loaded back through the versioned file format before use —
// each invocation exercises the full record -> save -> load -> replay loop.
//
// Expected shape: preventive control contains the stress events. In the
// heat-wave cell, injection-aware routing plus governors recovers p99 faster
// than round-robin open-loop (the exit code enforces it), and every cell
// must report a finite time-to-p99-recovery — a scenario that never
// re-stabilizes within the run fails the figure.
//
// Artifacts:
//   * bench_results/fig10_scenarios.csv — per-cell metrics, deterministic
//     byte-for-byte (CI cmp's cold vs warm-cache and across
//     DIMETRODON_FLEET_THREADS settings).
//   * bench_results/fig10_trace.dmtrace — the recorded arrival trace.
//   * BENCH_scenario.json (override with DIMETRODON_BENCH_JSON) — cells,
//     wall-clock and acceptance verdicts; NOT byte-stable (it records wall
//     time).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/fleet_spec.hpp"
#include "scenario/engine.hpp"
#include "scenario/trace_file.hpp"

using namespace dimetrodon;

namespace {

constexpr std::size_t kRacks = 3;
constexpr std::size_t kPerRack = 4;
constexpr std::size_t kNodes = kRacks * kPerRack;
constexpr double kPerNodeRps = 440.0;
constexpr double kWebDemandS = 0.0050;
const sim::SimTime kDuration = sim::from_sec(52);

control::GovernorSpec governor_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 46.0;
  g.hysteresis.release_c = 43.0;
  g.hysteresis.hot_probability = 0.5;
  return g;
}

struct ControlPlane {
  const char* name;
  bool governed;
};

cluster::FleetSpec base_fleet(const sched::MachineConfig& base,
                              cluster::PolicyKind routing,
                              const ControlPlane& control) {
  workload::WebWorkload::Config web = cluster::ClusterConfig::open_loop_web();
  web.demand_mean_s = kWebDemandS;

  cluster::FleetSpec spec =
      cluster::FleetSpec::racks(kRacks)
          .nodes_per_rack(kPerRack)
          .with_machine(base)
          .with_web(web)
          .with_cooling(0.9, 0.55)  // rack position degrades bottom -> top
          .with_crac(cluster::RackParams{})
          .with_load(kPerNodeRps * static_cast<double>(kNodes))
          .with_telemetry(sim::from_ms(20))
          .with_policy(routing, 0.25)
          .for_duration(kDuration);
  if (control.governed) {
    spec.with_governor(governor_spec());
  } else {
    spec.with_injection_gradient(0.5);
  }
  return spec;
}

cluster::NodeSpec join_spec(const ControlPlane& control) {
  cluster::NodeSpec n;
  n.fan_speed_fraction = 0.85;
  if (control.governed) {
    n.governor = governor_spec();
  } else {
    n.injection_probability = 0.3;
  }
  return n;
}

struct Stress {
  const char* name;
  scenario::ScenarioScript (*script)(const ControlPlane&);
  bool replay_trace;  // drive arrivals from the recorded trace
};

scenario::ScenarioScript replay_script(const ControlPlane&) {
  // Replay is itself the point; one drain/undrain event gives the recovery
  // tracker a marked disturbance to measure against.
  scenario::ScenarioScript s;
  s.drain(sim::from_sec(12), 3).undrain(sim::from_sec(16), 3);
  return s;
}

scenario::ScenarioScript churn_script(const ControlPlane& control) {
  scenario::ScenarioScript s;
  s.drain(sim::from_sec(12), 1)
      .remove(sim::from_sec(15), 7)
      .join(sim::from_sec(17), join_spec(control), sim::from_sec(2))
      .undrain(sim::from_sec(19), 1);
  return s;
}

scenario::ScenarioScript rolling_script(const ControlPlane& control) {
  scenario::ScenarioScript s;
  // Fan degradation on a mid-rack node is the disturbance; the staged
  // injection wave (rack-by-rack, 2 s stagger) is the operator response.
  s.set_fan(sim::from_sec(12), 2, 0.7);
  s.rolling_injection(sim::from_sec(14), sim::from_sec(2), kNodes, kPerRack,
                      0.35);
  if (control.governed) {
    // Retune the governors one rack position at a time: tighter trip band.
    control::GovernorSpec g = governor_spec();
    g.hysteresis.trip_c = 45.0;
    g.hysteresis.release_c = 42.5;
    for (std::size_t i = 0; i < kNodes; ++i) {
      s.retune_governor(sim::from_sec(22) + sim::from_ms(250) *
                                                static_cast<sim::SimTime>(i),
                        static_cast<std::uint32_t>(i), g);
    }
  }
  return s;
}

scenario::ScenarioScript heat_wave_script(const ControlPlane&) {
  scenario::ScenarioScript s;
  s.heat_wave(sim::from_sec(14), cluster::RackParams{}.crac_supply_c,
              /*peak_c=*/48.0, /*ramp=*/sim::from_sec(4),
              /*hold=*/sim::from_sec(3), /*steps=*/4);
  return s;
}

cluster::ArrivalTrace record_trace(const sched::MachineConfig& base) {
  auto recorder = std::make_shared<scenario::TraceRecorder>();
  auto fleet = base_fleet(base, cluster::PolicyKind::kRoundRobin,
                          ControlPlane{"open-loop", false})
                   .with_trace_sink([recorder] { return recorder; })
                   .make_cluster();
  fleet->run(kDuration);
  cluster::ArrivalTrace trace = recorder->take();
  // The balancer can route two arrivals in the same nanosecond when the
  // Poisson gap rounds to zero; the replay format wants strictly increasing
  // timestamps, so collapse any such tie onto the first arrival.
  std::size_t kept = 0;
  for (const cluster::ArrivalRecord& r : trace.records) {
    if (kept == 0 || r.at > trace.records[kept - 1].at) {
      trace.records[kept++] = r;
    }
  }
  trace.records.resize(kept);
  return trace;
}

struct Cell {
  std::string stress;
  std::string routing;
  std::string control;
  double offered = 0.0;
  double completed = 0.0;
  double throughput = 0.0;
  double p99_s = 0.0;
  double good_pct = 0.0;
  double peak_exact_c = 0.0;
  double peak_inlet_c = 0.0;
  double energy_j = 0.0;
  double drains = 0.0;
  double shed = 0.0;
  double rehomed = 0.0;
  double joins = 0.0;
  double removals = 0.0;
  double directives = 0.0;
  double latency_rejects = 0.0;
  double baseline_p99_s = 0.0;
  double threshold_p99_s = 0.0;
  double recovery_p99_s = 0.0;
  double peak_backlog = 0.0;
  double drain_total_s = 0.0;
  double drain_episodes = 0.0;
  double marks = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 10: serving scenarios under stress ===\n");
  (void)argc;
  (void)argv;

  sched::MachineConfig base;
  base.enable_meter = false;
  // Compressed thermal constants, same idiom as RackParams' deliberately
  // small air capacitance: scenarios compress hours of operation into a
  // sub-minute run, so the heatsink time constant (C * R ~ 44 s stock) must
  // be small enough for an ambient excursion to reach the die, and the
  // PROCHOT band low enough (and sticky enough) that a CRAC failure can
  // push an unmanaged node into the hardware safety net and keep it there
  // until it genuinely cools.
  base.floorplan.hs_capacitance = 15.0;
  base.prochot_c = 62.0;
  base.prochot_release_c = 55.0;

  // Record the replay trace, round-trip it through the on-disk format, and
  // keep the file as a bench artifact.
  const std::string trace_path = bench::csv_path("fig10_trace.dmtrace");
  cluster::ArrivalTrace recorded = record_trace(base);
  scenario::save_trace(trace_path, recorded);
  const auto shared_trace = std::make_shared<const cluster::ArrivalTrace>(
      scenario::load_trace(trace_path));
  if (shared_trace->records != recorded.records) {
    std::fprintf(stderr,
                 "[bench] FAILED: trace did not round-trip through %s\n",
                 trace_path.c_str());
    return 1;
  }
  std::printf("recorded %zu arrivals -> %s\n", shared_trace->records.size(),
              trace_path.c_str());

  const Stress kStresses[] = {
      {"trace-replay", replay_script, true},
      {"churn", churn_script, false},
      {"rolling-update", rolling_script, false},
      {"heat-wave", heat_wave_script, false},
  };
  const cluster::PolicyKind kRoutings[] = {
      cluster::PolicyKind::kRoundRobin,
      cluster::PolicyKind::kInjectionAware,
  };
  const ControlPlane kControls[] = {
      {"open-loop", false},
      {"governed", true},
  };

  runner::SweepEngine engine = bench::make_engine(base, "fig10_scenarios");

  std::vector<runner::RunSpec> specs;
  std::vector<const Stress*> spec_stress;
  std::vector<const ControlPlane*> spec_control;
  for (const Stress& stress : kStresses) {
    for (const auto routing : kRoutings) {
      for (const ControlPlane& control : kControls) {
        scenario::ScenarioSpec spec;
        spec.base = base_fleet(base, routing, control).build();
        if (stress.replay_trace) {
          spec.base.cluster.arrival_trace = shared_trace;
        }
        spec.script = stress.script(control);
        // Skip the fleet's thermal warm-up when deriving the recovery
        // baseline: the first seconds run cold and would understate the
        // steady-state envelope.
        spec.recovery_settle = sim::from_sec(8);
        specs.push_back(scenario::to_run_spec(spec));
        spec_stress.push_back(&stress);
        spec_control.push_back(&control);
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto records = bench::run_all_or_die(engine, specs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("swept %zu scenario cells in %.1f s wall\n", records.size(),
              wall);

  std::vector<std::string> header = {
      "scenario", "routing", "control", "offered", "completed",
      "throughput_rps", "p99_s", "good_pct", "fleet_peak_exact_c",
      "fleet_peak_inlet_c", "energy_j", "drains", "requests_shed",
      "requests_rehomed", "node_joins", "node_removals",
      "scenario_directives", "latency_rejects", "baseline_p99_s",
      "threshold_p99_s", "recovery_p99_s", "peak_backlog", "drain_total_s",
      "drain_episodes", "recovery_marks"};
  for (const std::string& col : bench::stability_columns()) {
    header.push_back(col);
  }
  trace::CsvWriter csv(bench::csv_path("fig10_scenarios.csv"), header);
  trace::Table table({"scenario", "routing", "control", "thr(rps)", "p99(s)",
                      "peak C", "drains", "shed", "backlog", "rec(s)"});

  std::vector<Cell> cells;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const runner::RunRecord& rec = records[i];
    const auto& qos = *rec.result.qos;
    Cell c;
    c.stress = spec_stress[i]->name;
    c.routing = rec.result.label;
    c.control = spec_control[i]->name;
    c.offered = rec.metric("offered");
    c.completed = rec.metric("completed");
    c.throughput = rec.result.throughput;
    c.p99_s = qos.p99_latency_s;
    c.good_pct = 100 * qos.good_fraction();
    c.peak_exact_c = rec.metric("fleet_peak_exact_c");
    c.peak_inlet_c = rec.metric("fleet_peak_inlet_c");
    c.energy_j = rec.metric("energy_j");
    c.drains = rec.metric("drains");
    c.shed = static_cast<double>(rec.result.counters.requests_shed);
    c.rehomed = static_cast<double>(rec.result.counters.requests_rehomed);
    c.joins = static_cast<double>(rec.result.counters.node_joins);
    c.removals = static_cast<double>(rec.result.counters.node_removals);
    c.directives =
        static_cast<double>(rec.result.counters.scenario_directives);
    c.latency_rejects =
        static_cast<double>(rec.result.counters.latency_rejects);
    c.baseline_p99_s = rec.metric("baseline_p99_s");
    c.threshold_p99_s = rec.metric("threshold_p99_s");
    c.recovery_p99_s = rec.metric("recovery_p99_s");
    c.peak_backlog = rec.metric("peak_backlog");
    c.drain_total_s = rec.metric("drain_total_s");
    c.drain_episodes = rec.metric("drain_episodes");
    c.marks = rec.metric("recovery_marks");
    cells.push_back(c);

    std::vector<std::string> row = {
        c.stress, c.routing, c.control, trace::fmt("%.0f", c.offered),
        trace::fmt("%.0f", c.completed), trace::fmt("%.10g", c.throughput),
        trace::fmt("%.10g", c.p99_s), trace::fmt("%.10g", c.good_pct),
        trace::fmt("%.10g", c.peak_exact_c),
        trace::fmt("%.10g", c.peak_inlet_c), trace::fmt("%.10g", c.energy_j),
        trace::fmt("%.0f", c.drains), trace::fmt("%.0f", c.shed),
        trace::fmt("%.0f", c.rehomed), trace::fmt("%.0f", c.joins),
        trace::fmt("%.0f", c.removals), trace::fmt("%.0f", c.directives),
        trace::fmt("%.0f", c.latency_rejects),
        trace::fmt("%.10g", c.baseline_p99_s),
        trace::fmt("%.10g", c.threshold_p99_s),
        trace::fmt("%.10g", c.recovery_p99_s),
        trace::fmt("%.0f", c.peak_backlog),
        trace::fmt("%.10g", c.drain_total_s),
        trace::fmt("%.0f", c.drain_episodes), trace::fmt("%.0f", c.marks)};
    for (const std::string& v : bench::stability_values(rec)) {
      row.push_back(v);
    }
    csv.write_row(row);
    table.add_row({c.stress, c.routing, c.control,
                   trace::fmt("%8.1f", c.throughput),
                   trace::fmt("%.4f", c.p99_s),
                   trace::fmt("%5.1f", c.peak_exact_c),
                   trace::fmt("%4.0f", c.drains), trace::fmt("%4.0f", c.shed),
                   trace::fmt("%5.0f", c.peak_backlog),
                   trace::fmt("%6.2f", c.recovery_p99_s)});
  }
  table.print(std::cout);

  // Shed or rejected samples are legal (the churn script deliberately
  // removes capacity) but always worth a visible flag in the report.
  for (const Cell& c : cells) {
    if (c.shed > 0 || c.latency_rejects > 0) {
      std::printf("[bench] warning: %s/%s/%s shed %.0f request(s), dropped "
                  "%.0f non-finite latency sample(s)\n",
                  c.stress.c_str(), c.routing.c_str(), c.control.c_str(),
                  c.shed, c.latency_rejects);
    }
  }

  // Acceptance 1: every cell re-stabilizes within the run.
  int rc = 0;
  for (const Cell& c : cells) {
    if (c.recovery_p99_s < 0.0) {
      std::fprintf(stderr,
                   "[bench] acceptance FAILED: %s/%s/%s never recovered its "
                   "p99 within the run\n",
                   c.stress.c_str(), c.routing.c_str(), c.control.c_str());
      rc = 1;
    }
  }

  // Acceptance 2: under the heat wave, preventive control (injection-aware
  // routing + governors) recovers strictly faster than round-robin
  // open-loop.
  const Cell* preventive = nullptr;
  const Cell* reactive = nullptr;
  for (const Cell& c : cells) {
    if (c.stress != "heat-wave") continue;
    if (c.routing == "injection-aware" && c.control == "governed") {
      preventive = &c;
    }
    if (c.routing == "round-robin" && c.control == "open-loop") {
      reactive = &c;
    }
  }
  double preventive_rec = -1.0;
  double reactive_rec = -1.0;
  if (preventive == nullptr || reactive == nullptr) {
    std::fprintf(stderr, "[bench] acceptance FAILED: heat-wave corner cells "
                         "missing from the grid\n");
    rc = 1;
  } else {
    preventive_rec = preventive->recovery_p99_s;
    reactive_rec = reactive->recovery_p99_s;
    const bool win = preventive_rec >= 0.0 &&
                     (reactive_rec < 0.0 || preventive_rec < reactive_rec);
    std::printf("\nheat-wave recovery: injection-aware+governed %.2f s vs "
                "round-robin+open-loop %.2f s\n",
                preventive_rec, reactive_rec);
    if (!win) {
      std::fprintf(stderr,
                   "[bench] acceptance FAILED: preventive control did not "
                   "recover faster than the reactive baseline under the heat "
                   "wave\n");
      rc = 1;
    }
  }

  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string json_path =
      (env != nullptr && *env) ? env : "BENCH_scenario.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-scenario v1\",\n"
               "  \"nodes\": %zu,\n"
               "  \"trace_arrivals\": %zu,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"cells\": [\n",
               kNodes, shared_trace->records.size(), wall);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"routing\": \"%s\", \"control\": "
        "\"%s\", \"offered\": %.0f, \"throughput_rps\": %.10g, "
        "\"p99_s\": %.10g, \"peak_exact_c\": %.10g, \"drains\": %.0f, "
        "\"shed\": %.0f, \"rehomed\": %.0f, \"joins\": %.0f, "
        "\"removals\": %.0f, \"peak_backlog\": %.0f, "
        "\"recovery_p99_s\": %.10g, \"baseline_p99_s\": %.10g}%s\n",
        c.stress.c_str(), c.routing.c_str(), c.control.c_str(), c.offered,
        c.throughput, c.p99_s, c.peak_exact_c, c.drains, c.shed, c.rehomed,
        c.joins, c.removals, c.peak_backlog, c.recovery_p99_s,
        c.baseline_p99_s, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"acceptance\": {\n"
               "    \"all_recovered\": %s,\n"
               "    \"heat_wave_preventive_recovery_s\": %.10g,\n"
               "    \"heat_wave_reactive_recovery_s\": %.10g\n"
               "  }\n"
               "}\n",
               rc == 0 ? "true" : "false", preventive_rec, reactive_rec);
  std::fclose(f);

  std::printf("wrote %s, %s and %s\n",
              bench::csv_path("fig10_scenarios.csv").c_str(),
              trace_path.c_str(), json_path.c_str());
  return rc;
}
