// Figure 9 (extension): datacenter-scale fleets under a compressed diurnal
// day. The cluster layer runs 100- and 1000-node fleets — racks of ten with
// CRAC recirculation coupling, a sinusoidal diurnal load curve with an
// evening flash crowd — and crosses routing policy (round-robin,
// coolest-node, injection-aware) with the control plane (open-loop
// worst-case injection gradient vs closed-loop hysteresis governors).
//
// Expected shape: round-robin with worst-case open-loop provisioning
// over-throttles through the diurnal trough and still lets the badly cooled
// rack tops set the fleet peak at the flash crowd; thermal-aware routing
// plus governors sheds duty whenever sensors allow and steers work away
// from hot rack positions, beating the baseline on fleet peak temperature
// at equal-or-better p99 in at least one cell (the exit code enforces it).
//
// Artifacts:
//   * bench_results/fig9_fleet_scale.csv — per-cell metrics, deterministic
//     byte-for-byte (CI cmp's a cold vs warm-cache run).
//   * BENCH_fleet.json (override with DIMETRODON_BENCH_JSON) — cells plus
//     per-scale wall-clock and the process peak RSS; NOT byte-stable by
//     design (it records wall time).
//
// `--scale N` limits the run to one fleet size (CI runs the 100-node cell;
// the 1000-node day is the local/acceptance configuration). After the sweep,
// a parallel-advancement probe re-runs one representative cell (coolest-node
// governed) at fleet_threads=1 vs min(8, hardware) and enforces both halves
// of the section-11 contract: bit-identical results always, and a wall-clock
// speedup bar (4x at 1000 nodes on >=8 cores, 2x at 100 nodes on >=4 cores;
// recorded as skipped on smaller hosts where the bar is unmeasurable).
// `--no-probe` skips it — CI's byte-identity re-runs under different
// DIMETRODON_FLEET_THREADS use that to keep the cross-run cmp cheap.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/fleet_spec.hpp"

using namespace dimetrodon;

namespace {

constexpr double kPerNodeRps = 600.0;  // ~0.75 utilization of 4 cores @ 5 ms
constexpr double kWebDemandS = 0.0050;

control::GovernorSpec governor_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 46.0;
  g.hysteresis.release_c = 43.0;
  g.hysteresis.hot_probability = 0.5;
  return g;
}

struct ControlPlane {
  const char* name;
  bool governed;
};

struct Scale {
  std::size_t racks;
  std::size_t per_rack;
  sim::SimTime day;  // diurnal period == run duration (one compressed day)
  std::size_t nodes() const { return racks * per_rack; }
};

cluster::FleetSpec make_fleet(const sched::MachineConfig& base,
                              const Scale& scale,
                              cluster::PolicyKind routing,
                              const ControlPlane& control) {
  workload::WebWorkload::Config web = cluster::ClusterConfig::open_loop_web();
  web.demand_mean_s = kWebDemandS;

  // One compressed day: sinusoidal +/-60% around the base rate, with a flash
  // crowd (x1.8 for an eighth of the day) landing on the cooling evening.
  const cluster::TrafficShape traffic =
      cluster::TrafficShape::diurnal(scale.day, 0.6)
          .with_flash(scale.day * 5 / 8, scale.day / 8, 1.8);

  cluster::FleetSpec spec =
      cluster::FleetSpec::racks(scale.racks)
          .nodes_per_rack(scale.per_rack)
          .with_machine(base)
          .with_web(web)
          .with_cooling(0.9, 0.5)  // rack position degrades bottom -> top
          .with_crac(cluster::RackParams{})
          .with_load(kPerNodeRps * static_cast<double>(scale.nodes()))
          .with_traffic(traffic)
          .with_telemetry(sim::from_ms(20))
          .with_policy(routing, 0.25)
          .for_duration(scale.day);
  if (control.governed) {
    spec.with_governor(governor_spec());
  } else {
    // Open-loop worst case: the operator dials preventive injection up the
    // rack (p = 0.6 at the hottest position) and leaves it there all day.
    spec.with_injection_gradient(0.6);
  }
  return spec;
}

cluster::ClusterRunSpec make_point(const sched::MachineConfig& base,
                                   const Scale& scale,
                                   cluster::PolicyKind routing,
                                   const ControlPlane& control) {
  return make_fleet(base, scale, routing, control).build();
}

struct Cell {
  std::size_t nodes = 0;
  std::string routing;
  std::string control;
  double offered = 0.0;
  double completed = 0.0;
  double throughput = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double good_pct = 0.0;
  double peak_sensor_c = 0.0;
  double peak_exact_c = 0.0;
  double mean_sensor_c = 0.0;
  double peak_inlet_c = 0.0;
  double energy_j = 0.0;
  double drains = 0.0;
  double racks = 0.0;
};

long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // kilobytes on Linux
}

// ---------------------------------------------------------------------------
// Parallel-advancement probe: one representative cell per scale, serial vs
// pooled, bitwise compared + wall-clock gated.
// ---------------------------------------------------------------------------

bool identical_results(const cluster::ClusterResult& a,
                       const cluster::ClusterResult& b) {
  if (a.offered != b.offered || a.completed != b.completed ||
      a.throughput_rps != b.throughput_rps || a.qos.total != b.qos.total ||
      a.qos.good != b.qos.good || a.qos.fail != b.qos.fail ||
      a.qos.mean_latency_s != b.qos.mean_latency_s ||
      a.qos.p99_latency_s != b.qos.p99_latency_s ||
      a.qos.max_latency_s != b.qos.max_latency_s ||
      a.fleet_peak_sensor_c != b.fleet_peak_sensor_c ||
      a.fleet_peak_exact_c != b.fleet_peak_exact_c ||
      a.fleet_mean_sensor_c != b.fleet_mean_sensor_c ||
      a.fleet_peak_inlet_c != b.fleet_peak_inlet_c || a.drains != b.drains ||
      a.total_energy_j != b.total_energy_j || !(a.counters == b.counters) ||
      a.nodes.size() != b.nodes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i].routed != b.nodes[i].routed ||
        a.nodes[i].completed != b.nodes[i].completed ||
        a.nodes[i].peak_sensor_c != b.nodes[i].peak_sensor_c ||
        a.nodes[i].mean_sensor_c != b.nodes[i].mean_sensor_c ||
        a.nodes[i].drains != b.nodes[i].drains ||
        a.nodes[i].governor_trips != b.nodes[i].governor_trips) {
      return false;
    }
  }
  return true;
}

struct ProbeResult {
  std::size_t nodes = 0;
  std::size_t fleet_threads = 0;
  double serial_wall = 0.0;
  double parallel_wall = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
  std::string gate;  // "pass" | "fail" | "skipped (N-core host)"
  bool failed = false;
};

ProbeResult probe_scale(const sched::MachineConfig& base, const Scale& scale) {
  ProbeResult p;
  p.nodes = scale.nodes();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  p.fleet_threads = std::min<std::size_t>(8, hw);

  const ControlPlane governed{"governed", true};
  const auto run_with = [&](std::size_t threads, double& wall) {
    auto fleet =
        make_fleet(base, scale, cluster::PolicyKind::kCoolestNode, governed)
            .with_fleet_threads(threads)
            .make_cluster();
    const auto t0 = std::chrono::steady_clock::now();
    cluster::ClusterResult r = fleet->run(scale.day);
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
    return r;
  };

  std::printf("  probing %zu-node cell: fleet_threads 1 vs %zu...\n", p.nodes,
              p.fleet_threads);
  const cluster::ClusterResult serial = run_with(1, p.serial_wall);
  const cluster::ClusterResult pooled = run_with(p.fleet_threads,
                                                 p.parallel_wall);
  p.speedup = p.parallel_wall > 0.0 ? p.serial_wall / p.parallel_wall : 0.0;
  p.bit_identical = identical_results(serial, pooled);
  if (!p.bit_identical) p.failed = true;

  // The speedup bar only means something when the host has the cores the bar
  // assumes; on smaller machines record the numbers but skip the verdict.
  const double bar = p.nodes >= 1000 ? 4.0 : 2.0;
  const unsigned need_cores = p.nodes >= 1000 ? 8 : 4;
  if (hw < need_cores) {
    p.gate = "skipped (" + std::to_string(hw) + "-core host)";
  } else if (p.speedup >= bar) {
    p.gate = "pass";
  } else {
    p.gate = "fail";
    p.failed = true;
  }
  std::printf("    serial %.2f s, %zu threads %.2f s -> %.2fx "
              "(bar %.1fx: %s, identical=%d)\n",
              p.serial_wall, p.fleet_threads, p.parallel_wall, p.speedup, bar,
              p.gate.c_str(), p.bit_identical ? 1 : 0);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 9: fleet scale under a diurnal day ===\n");

  std::vector<Scale> scales = {
      {10, 10, sim::from_sec(8)},    // 100 nodes, 8 s day
      {100, 10, sim::from_sec(4)},   // 1000 nodes, 4 s day
  };
  bool probe = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      const std::size_t want = std::strtoul(argv[i + 1], nullptr, 10);
      std::erase_if(scales, [&](const Scale& s) { return s.nodes() != want; });
    } else if (std::strcmp(argv[i], "--no-probe") == 0) {
      probe = false;
    }
  }
  if (scales.empty()) {
    std::fprintf(stderr, "unknown --scale (have 100, 1000)\n");
    return 1;
  }

  sched::MachineConfig base;
  base.enable_meter = false;

  const cluster::PolicyKind kRoutings[] = {
      cluster::PolicyKind::kRoundRobin,
      cluster::PolicyKind::kCoolestNode,
      cluster::PolicyKind::kInjectionAware,
  };
  const ControlPlane kControls[] = {
      {"open-loop", false},
      {"governed", true},
  };

  runner::SweepEngine engine = bench::make_engine(base, "fig9_fleet_scale");

  std::vector<std::string> header = {
      "nodes", "routing", "control", "offered", "completed", "throughput_rps",
      "p50_s", "p95_s", "p99_s", "good_pct", "fleet_peak_sensor_c",
      "fleet_peak_exact_c", "fleet_mean_sensor_c", "fleet_peak_inlet_c",
      "energy_j", "drains", "racks"};
  for (const std::string& col : bench::stability_columns()) {
    header.push_back(col);
  }
  trace::CsvWriter csv(bench::csv_path("fig9_fleet_scale.csv"), header);
  trace::Table table({"nodes", "routing", "control", "thr(rps)", "p99(s)",
                      "good%", "peak C", "inlet C", "E(kJ)", "drains"});

  std::vector<Cell> cells;
  std::vector<std::pair<std::size_t, double>> wall_by_scale;

  for (const Scale& scale : scales) {
    std::vector<runner::RunSpec> specs;
    for (const ControlPlane& control : kControls) {
      for (const auto routing : kRoutings) {
        specs.push_back(
            cluster::to_run_spec(make_point(base, scale, routing, control)));
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = bench::run_all_or_die(engine, specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    wall_by_scale.emplace_back(scale.nodes(), wall);

    std::size_t idx = 0;
    for (const ControlPlane& control : kControls) {
      for ([[maybe_unused]] const auto routing : kRoutings) {
        const runner::RunRecord& rec = records.at(idx++);
        const auto& qos = *rec.result.qos;
        Cell c;
        c.nodes = scale.nodes();
        c.routing = rec.result.label;
        c.control = control.name;
        c.offered = rec.metric("offered");
        c.completed = rec.metric("completed");
        c.throughput = rec.result.throughput;
        c.p50_s = qos.p50_latency_s;
        c.p95_s = qos.p95_latency_s;
        c.p99_s = qos.p99_latency_s;
        c.good_pct = 100 * qos.good_fraction();
        c.peak_sensor_c = rec.metric("fleet_peak_sensor_c");
        c.peak_exact_c = rec.metric("fleet_peak_exact_c");
        c.mean_sensor_c = rec.metric("fleet_mean_sensor_c");
        c.peak_inlet_c = rec.metric("fleet_peak_inlet_c");
        c.energy_j = rec.metric("energy_j");
        c.drains = rec.metric("drains");
        c.racks = rec.metric("racks");
        cells.push_back(c);

        std::vector<std::string> row = {
            trace::fmt("%zu", c.nodes), c.routing, c.control,
            trace::fmt("%.0f", c.offered), trace::fmt("%.0f", c.completed),
            trace::fmt("%.10g", c.throughput), trace::fmt("%.10g", c.p50_s),
            trace::fmt("%.10g", c.p95_s), trace::fmt("%.10g", c.p99_s),
            trace::fmt("%.10g", c.good_pct),
            trace::fmt("%.10g", c.peak_sensor_c),
            trace::fmt("%.10g", c.peak_exact_c),
            trace::fmt("%.10g", c.mean_sensor_c),
            trace::fmt("%.10g", c.peak_inlet_c),
            trace::fmt("%.10g", c.energy_j), trace::fmt("%.0f", c.drains),
            trace::fmt("%.0f", c.racks)};
        for (const std::string& v : bench::stability_values(rec)) {
          row.push_back(v);
        }
        csv.write_row(row);
        table.add_row({trace::fmt("%zu", c.nodes), c.routing, c.control,
                       trace::fmt("%9.1f", c.throughput),
                       trace::fmt("%.4f", c.p99_s),
                       trace::fmt("%5.1f", c.good_pct),
                       trace::fmt("%5.1f", c.peak_exact_c),
                       trace::fmt("%5.1f", c.peak_inlet_c),
                       trace::fmt("%6.1f", c.energy_j / 1000.0),
                       trace::fmt("%4.0f", c.drains)});
      }
    }
    std::printf("  %zu-node day swept in %.1f s wall\n", scale.nodes(), wall);
  }
  table.print(std::cout);

  // Acceptance: thermal-aware routing + governors beats the round-robin
  // open-loop baseline on fleet peak temperature at equal-or-better p99.
  struct Win {
    const Cell* candidate;
    const Cell* baseline;
  };
  std::vector<Win> wins;
  for (const Cell& g : cells) {
    if (g.control != "governed" || g.routing == "round-robin") continue;
    for (const Cell& b : cells) {
      if (b.control != "open-loop" || b.routing != "round-robin" ||
          b.nodes != g.nodes) {
        continue;
      }
      if (g.peak_exact_c < b.peak_exact_c && g.p99_s <= b.p99_s) {
        wins.push_back({&g, &b});
      }
    }
  }

  std::printf("\nthermal-aware + governed wins vs round-robin open-loop: "
              "%zu\n", wins.size());
  for (const Win& w : wins) {
    std::printf("  %zu nodes, %s/governed: peak %.2f C vs %.2f C, "
                "p99 %.4f s vs %.4f s\n",
                w.candidate->nodes, w.candidate->routing.c_str(),
                w.candidate->peak_exact_c, w.baseline->peak_exact_c,
                w.candidate->p99_s, w.baseline->p99_s);
  }

  std::vector<ProbeResult> probes;
  if (probe) {
    std::printf("\nparallel-advancement probe (coolest-node governed cell):\n");
    for (const Scale& scale : scales) {
      probes.push_back(probe_scale(base, scale));
    }
  }

  const long rss_kb = peak_rss_kb();
  std::printf("peak RSS: %.1f MB\n", static_cast<double>(rss_kb) / 1024.0);

  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string json_path =
      (env != nullptr && *env) ? env : "BENCH_fleet.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-fleet v2\",\n"
               "  \"per_node_rps\": %.0f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"scales\": [\n",
               kPerNodeRps, rss_kb);
  for (std::size_t s = 0; s < wall_by_scale.size(); ++s) {
    const auto& [nodes, wall] = wall_by_scale[s];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"wall_seconds\": %.3f, \"cells\": [\n",
                 nodes, wall);
    bool first = true;
    for (const Cell& c : cells) {
      if (c.nodes != nodes) continue;
      if (!first) std::fprintf(f, ",\n");
      first = false;
      std::fprintf(
          f,
          "      {\"routing\": \"%s\", \"control\": \"%s\", "
          "\"offered\": %.0f, \"throughput_rps\": %.10g, \"p99_s\": %.10g, "
          "\"good_pct\": %.10g, \"peak_sensor_c\": %.10g, "
          "\"peak_exact_c\": %.10g, \"peak_inlet_c\": %.10g, "
          "\"energy_j\": %.10g, \"drains\": %.0f}",
          c.routing.c_str(), c.control.c_str(), c.offered, c.throughput,
          c.p99_s, c.good_pct, c.peak_sensor_c, c.peak_exact_c,
          c.peak_inlet_c, c.energy_j, c.drains);
    }
    std::fprintf(f, "\n    ]}%s\n",
                 s + 1 < wall_by_scale.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallel\": [\n");
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const ProbeResult& p = probes[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"fleet_threads\": %zu, "
                 "\"serial_wall_seconds\": %.3f, "
                 "\"parallel_wall_seconds\": %.3f, "
                 "\"parallel_speedup\": %.3f, \"bit_identical\": %s, "
                 "\"gate\": \"%s\"}%s\n",
                 p.nodes, p.fleet_threads, p.serial_wall, p.parallel_wall,
                 p.speedup, p.bit_identical ? "true" : "false",
                 p.gate.c_str(), i + 1 < probes.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"acceptance\": {\n"
               "    \"thermal_aware_governed_wins\": %zu\n"
               "  }\n"
               "}\n",
               wins.size());
  std::fclose(f);

  std::printf("wrote %s and %s\n",
              bench::csv_path("fig9_fleet_scale.csv").c_str(),
              json_path.c_str());

  int rc = 0;
  if (wins.empty()) {
    std::fprintf(stderr,
                 "[bench] acceptance FAILED: no thermal-aware governed cell "
                 "beat round-robin open-loop on peak temp at equal-or-better "
                 "p99\n");
    rc = 1;
  }
  for (const ProbeResult& p : probes) {
    if (!p.bit_identical) {
      std::fprintf(stderr,
                   "[bench] acceptance FAILED: %zu-node parallel advancement "
                   "is not bit-identical to serial\n",
                   p.nodes);
      rc = 1;
    } else if (p.failed) {
      std::fprintf(stderr,
                   "[bench] acceptance FAILED: %zu-node parallel speedup "
                   "%.2fx below the bar at %zu threads\n",
                   p.nodes, p.speedup, p.fleet_threads);
      rc = 1;
    }
  }
  return rc;
}
