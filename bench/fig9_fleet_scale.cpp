// Figure 9 (extension): datacenter-scale fleets under a compressed diurnal
// day. The cluster layer runs 100- and 1000-node fleets — racks of ten with
// CRAC recirculation coupling, a sinusoidal diurnal load curve with an
// evening flash crowd — and crosses routing policy (round-robin,
// coolest-node, injection-aware) with the control plane (open-loop
// worst-case injection gradient vs closed-loop hysteresis governors).
//
// Expected shape: round-robin with worst-case open-loop provisioning
// over-throttles through the diurnal trough and still lets the badly cooled
// rack tops set the fleet peak at the flash crowd; thermal-aware routing
// plus governors sheds duty whenever sensors allow and steers work away
// from hot rack positions, beating the baseline on fleet peak temperature
// at equal-or-better p99 in at least one cell (the exit code enforces it).
//
// Artifacts:
//   * bench_results/fig9_fleet_scale.csv — per-cell metrics, deterministic
//     byte-for-byte (CI cmp's a cold vs warm-cache run).
//   * BENCH_fleet.json (override with DIMETRODON_BENCH_JSON) — cells plus
//     per-scale wall-clock and the process peak RSS; NOT byte-stable by
//     design (it records wall time).
//
// `--scale N` limits the run to one fleet size (CI runs the 100-node cell;
// the 1000-node day is the local/acceptance configuration).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/fleet_spec.hpp"

using namespace dimetrodon;

namespace {

constexpr double kPerNodeRps = 600.0;  // ~0.75 utilization of 4 cores @ 5 ms
constexpr double kWebDemandS = 0.0050;

control::GovernorSpec governor_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 46.0;
  g.hysteresis.release_c = 43.0;
  g.hysteresis.hot_probability = 0.5;
  return g;
}

struct ControlPlane {
  const char* name;
  bool governed;
};

struct Scale {
  std::size_t racks;
  std::size_t per_rack;
  sim::SimTime day;  // diurnal period == run duration (one compressed day)
  std::size_t nodes() const { return racks * per_rack; }
};

cluster::ClusterRunSpec make_point(const sched::MachineConfig& base,
                                   const Scale& scale,
                                   cluster::PolicyKind routing,
                                   const ControlPlane& control) {
  workload::WebWorkload::Config web = cluster::ClusterConfig::open_loop_web();
  web.demand_mean_s = kWebDemandS;

  // One compressed day: sinusoidal +/-60% around the base rate, with a flash
  // crowd (x1.8 for an eighth of the day) landing on the cooling evening.
  const cluster::TrafficShape traffic =
      cluster::TrafficShape::diurnal(scale.day, 0.6)
          .with_flash(scale.day * 5 / 8, scale.day / 8, 1.8);

  cluster::FleetSpec spec =
      cluster::FleetSpec::racks(scale.racks)
          .nodes_per_rack(scale.per_rack)
          .with_machine(base)
          .with_web(web)
          .with_cooling(0.9, 0.5)  // rack position degrades bottom -> top
          .with_crac(cluster::RackParams{})
          .with_load(kPerNodeRps * static_cast<double>(scale.nodes()))
          .with_traffic(traffic)
          .with_telemetry(sim::from_ms(20))
          .with_policy(routing, 0.25)
          .for_duration(scale.day);
  if (control.governed) {
    spec.with_governor(governor_spec());
  } else {
    // Open-loop worst case: the operator dials preventive injection up the
    // rack (p = 0.6 at the hottest position) and leaves it there all day.
    spec.with_injection_gradient(0.6);
  }
  return spec.build();
}

struct Cell {
  std::size_t nodes = 0;
  std::string routing;
  std::string control;
  double offered = 0.0;
  double completed = 0.0;
  double throughput = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double good_pct = 0.0;
  double peak_sensor_c = 0.0;
  double peak_exact_c = 0.0;
  double mean_sensor_c = 0.0;
  double peak_inlet_c = 0.0;
  double energy_j = 0.0;
  double drains = 0.0;
  double racks = 0.0;
};

long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // kilobytes on Linux
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 9: fleet scale under a diurnal day ===\n");

  std::vector<Scale> scales = {
      {10, 10, sim::from_sec(8)},    // 100 nodes, 8 s day
      {100, 10, sim::from_sec(4)},   // 1000 nodes, 4 s day
  };
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      const std::size_t want = std::strtoul(argv[i + 1], nullptr, 10);
      std::erase_if(scales, [&](const Scale& s) { return s.nodes() != want; });
    }
  }
  if (scales.empty()) {
    std::fprintf(stderr, "unknown --scale (have 100, 1000)\n");
    return 1;
  }

  sched::MachineConfig base;
  base.enable_meter = false;

  const cluster::PolicyKind kRoutings[] = {
      cluster::PolicyKind::kRoundRobin,
      cluster::PolicyKind::kCoolestNode,
      cluster::PolicyKind::kInjectionAware,
  };
  const ControlPlane kControls[] = {
      {"open-loop", false},
      {"governed", true},
  };

  runner::SweepEngine engine = bench::make_engine(base, "fig9_fleet_scale");

  std::vector<std::string> header = {
      "nodes", "routing", "control", "offered", "completed", "throughput_rps",
      "p50_s", "p95_s", "p99_s", "good_pct", "fleet_peak_sensor_c",
      "fleet_peak_exact_c", "fleet_mean_sensor_c", "fleet_peak_inlet_c",
      "energy_j", "drains", "racks"};
  for (const std::string& col : bench::stability_columns()) {
    header.push_back(col);
  }
  trace::CsvWriter csv(bench::csv_path("fig9_fleet_scale.csv"), header);
  trace::Table table({"nodes", "routing", "control", "thr(rps)", "p99(s)",
                      "good%", "peak C", "inlet C", "E(kJ)", "drains"});

  std::vector<Cell> cells;
  std::vector<std::pair<std::size_t, double>> wall_by_scale;

  for (const Scale& scale : scales) {
    std::vector<runner::RunSpec> specs;
    for (const ControlPlane& control : kControls) {
      for (const auto routing : kRoutings) {
        specs.push_back(
            cluster::to_run_spec(make_point(base, scale, routing, control)));
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = bench::run_all_or_die(engine, specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    wall_by_scale.emplace_back(scale.nodes(), wall);

    std::size_t idx = 0;
    for (const ControlPlane& control : kControls) {
      for ([[maybe_unused]] const auto routing : kRoutings) {
        const runner::RunRecord& rec = records.at(idx++);
        const auto& qos = *rec.result.qos;
        Cell c;
        c.nodes = scale.nodes();
        c.routing = rec.result.label;
        c.control = control.name;
        c.offered = rec.metric("offered");
        c.completed = rec.metric("completed");
        c.throughput = rec.result.throughput;
        c.p50_s = qos.p50_latency_s;
        c.p95_s = qos.p95_latency_s;
        c.p99_s = qos.p99_latency_s;
        c.good_pct = 100 * qos.good_fraction();
        c.peak_sensor_c = rec.metric("fleet_peak_sensor_c");
        c.peak_exact_c = rec.metric("fleet_peak_exact_c");
        c.mean_sensor_c = rec.metric("fleet_mean_sensor_c");
        c.peak_inlet_c = rec.metric("fleet_peak_inlet_c");
        c.energy_j = rec.metric("energy_j");
        c.drains = rec.metric("drains");
        c.racks = rec.metric("racks");
        cells.push_back(c);

        std::vector<std::string> row = {
            trace::fmt("%zu", c.nodes), c.routing, c.control,
            trace::fmt("%.0f", c.offered), trace::fmt("%.0f", c.completed),
            trace::fmt("%.10g", c.throughput), trace::fmt("%.10g", c.p50_s),
            trace::fmt("%.10g", c.p95_s), trace::fmt("%.10g", c.p99_s),
            trace::fmt("%.10g", c.good_pct),
            trace::fmt("%.10g", c.peak_sensor_c),
            trace::fmt("%.10g", c.peak_exact_c),
            trace::fmt("%.10g", c.mean_sensor_c),
            trace::fmt("%.10g", c.peak_inlet_c),
            trace::fmt("%.10g", c.energy_j), trace::fmt("%.0f", c.drains),
            trace::fmt("%.0f", c.racks)};
        for (const std::string& v : bench::stability_values(rec)) {
          row.push_back(v);
        }
        csv.write_row(row);
        table.add_row({trace::fmt("%zu", c.nodes), c.routing, c.control,
                       trace::fmt("%9.1f", c.throughput),
                       trace::fmt("%.4f", c.p99_s),
                       trace::fmt("%5.1f", c.good_pct),
                       trace::fmt("%5.1f", c.peak_exact_c),
                       trace::fmt("%5.1f", c.peak_inlet_c),
                       trace::fmt("%6.1f", c.energy_j / 1000.0),
                       trace::fmt("%4.0f", c.drains)});
      }
    }
    std::printf("  %zu-node day swept in %.1f s wall\n", scale.nodes(), wall);
  }
  table.print(std::cout);

  // Acceptance: thermal-aware routing + governors beats the round-robin
  // open-loop baseline on fleet peak temperature at equal-or-better p99.
  struct Win {
    const Cell* candidate;
    const Cell* baseline;
  };
  std::vector<Win> wins;
  for (const Cell& g : cells) {
    if (g.control != "governed" || g.routing == "round-robin") continue;
    for (const Cell& b : cells) {
      if (b.control != "open-loop" || b.routing != "round-robin" ||
          b.nodes != g.nodes) {
        continue;
      }
      if (g.peak_exact_c < b.peak_exact_c && g.p99_s <= b.p99_s) {
        wins.push_back({&g, &b});
      }
    }
  }

  std::printf("\nthermal-aware + governed wins vs round-robin open-loop: "
              "%zu\n", wins.size());
  for (const Win& w : wins) {
    std::printf("  %zu nodes, %s/governed: peak %.2f C vs %.2f C, "
                "p99 %.4f s vs %.4f s\n",
                w.candidate->nodes, w.candidate->routing.c_str(),
                w.candidate->peak_exact_c, w.baseline->peak_exact_c,
                w.candidate->p99_s, w.baseline->p99_s);
  }

  const long rss_kb = peak_rss_kb();
  std::printf("peak RSS: %.1f MB\n", static_cast<double>(rss_kb) / 1024.0);

  const char* env = std::getenv("DIMETRODON_BENCH_JSON");
  const std::string json_path =
      (env != nullptr && *env) ? env : "BENCH_fleet.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"dimetrodon-bench-fleet v1\",\n"
               "  \"per_node_rps\": %.0f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"scales\": [\n",
               kPerNodeRps, rss_kb);
  for (std::size_t s = 0; s < wall_by_scale.size(); ++s) {
    const auto& [nodes, wall] = wall_by_scale[s];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"wall_seconds\": %.3f, \"cells\": [\n",
                 nodes, wall);
    bool first = true;
    for (const Cell& c : cells) {
      if (c.nodes != nodes) continue;
      if (!first) std::fprintf(f, ",\n");
      first = false;
      std::fprintf(
          f,
          "      {\"routing\": \"%s\", \"control\": \"%s\", "
          "\"offered\": %.0f, \"throughput_rps\": %.10g, \"p99_s\": %.10g, "
          "\"good_pct\": %.10g, \"peak_sensor_c\": %.10g, "
          "\"peak_exact_c\": %.10g, \"peak_inlet_c\": %.10g, "
          "\"energy_j\": %.10g, \"drains\": %.0f}",
          c.routing.c_str(), c.control.c_str(), c.offered, c.throughput,
          c.p99_s, c.good_pct, c.peak_sensor_c, c.peak_exact_c,
          c.peak_inlet_c, c.energy_j, c.drains);
    }
    std::fprintf(f, "\n    ]}%s\n",
                 s + 1 < wall_by_scale.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"acceptance\": {\n"
               "    \"thermal_aware_governed_wins\": %zu\n"
               "  }\n"
               "}\n",
               wins.size());
  std::fclose(f);

  std::printf("wrote %s and %s\n",
              bench::csv_path("fig9_fleet_scale.csv").c_str(),
              json_path.c_str());

  if (wins.empty()) {
    std::fprintf(stderr,
                 "[bench] acceptance FAILED: no thermal-aware governed cell "
                 "beat round-robin open-loop on peak temp at equal-or-better "
                 "p99\n");
    return 1;
  }
  return 0;
}
